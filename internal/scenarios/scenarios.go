// Package scenarios is the bug corpus of the reproduction: one kir program
// per concurrency failure studied in the paper — the 10 CVEs of Table 2,
// the 12 Syzkaller-reported bugs of Table 3, and the didactic examples of
// Figures 1, 4, 5 and 7 — each modelling the documented race structure
// (variables, data races, race-steered control flows, background threads,
// failure mode) together with its ground-truth causality chain.
//
// The scenarios substitute for the Linux kernel code the paper runs under
// its hypervisor: the diagnosis algorithms only observe shared-memory
// accesses, control flow and failures, all of which the scenarios
// reproduce structurally.
package scenarios

import (
	"fmt"
	"sort"
	"sync"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// Group classifies where a scenario appears in the paper's evaluation.
type Group string

const (
	// GroupCVE scenarios reproduce Table 2 (CVE database failures).
	GroupCVE Group = "cve"
	// GroupSyzkaller scenarios reproduce Table 3 (Syzkaller failures).
	GroupSyzkaller Group = "syzkaller"
	// GroupFigure scenarios reproduce the paper's inline figures.
	GroupFigure Group = "figure"
	// GroupExtension scenarios implement the paper's stated future work
	// (hardware-IRQ contexts, §4.6).
	GroupExtension Group = "extension"
	// GroupGenerated scenarios were produced by the scenario factory
	// (internal/factory): fuzzer-found failures, minimized, diagnosed and
	// emitted under generated/ with their golden chain pinned at emission
	// time.
	GroupGenerated Group = "generated"
)

// Structure classes: the interleaving taxonomy the factory fills
// (atomicity violations, order violations, data races, deadlocks).
const (
	StructAtomicity = "atomicity violation"
	StructOrder     = "order violation"
	StructDataRace  = "data race"
	StructDeadlock  = "deadlock"
)

// Scenario is one concurrency failure with its ground truth.
type Scenario struct {
	// Name is the registry key, e.g. "cve-2017-15649".
	Name string
	// Title is the paper's identifier (CVE id or syzkaller bug title).
	Title string
	// Group places the scenario in the evaluation.
	Group Group
	// Subsystem matches the paper's Subsystem column.
	Subsystem string
	// BugType matches Table 3's bug-type column.
	BugType string
	// MultiVariable and LooselyCorrelated match Table 3's classification.
	MultiVariable     bool
	LooselyCorrelated bool
	// Threads is the number of statically declared threads (system calls);
	// background threads spawn dynamically.
	Threads int
	// HasBackgroundThread marks scenarios whose failure involves a
	// kworker or RCU callback.
	HasBackgroundThread bool

	// WantKind is the failure the scenario must reproduce.
	WantKind sanitizer.Kind
	// WantLabel, when set, is the label of the instruction at which the
	// failure must manifest — the failing location from the crash report.
	// It disambiguates programs that harbour more than one failure (e.g.
	// CVE-2017-15649, where the global_list double insertion is a second,
	// easier-to-hit bug in the same code).
	WantLabel string
	// WantChainLen is the expected number of races in the causality chain
	// (Table 3's "# of races in chain").
	WantChainLen int
	// WantChain, when set, is the expected chain rendering (paper
	// notation via Chain.Format).
	WantChain string
	// WantAmbiguous marks scenarios that hit the §3.4 ambiguity case
	// (CVE-2016-10200 and Figure 7).
	WantAmbiguous bool
	// WantInterleavings is the expected LIFS interleaving count (0 =
	// unspecified; Table 2/3 report 1 or 2).
	WantInterleavings int
	// BenignRaces is the number of benign races the scenario plants; the
	// chain must exclude all of them.
	BenignRaces int

	// Structure, when set, overrides the derived interleaving-structure
	// class (see StructureClass).
	Structure string

	// Notes documents how the scenario maps to the real bug.
	Notes string

	// GenInfo carries the factory manifest for generated scenarios (nil
	// for the hand-built corpus).
	GenInfo *GenManifest

	// Noise declares background-workload reader threads (thread name ->
	// access specs, see kir.ExtendReaders) added by CorpusProgram for the
	// statistical baselines. It models the access population around the
	// bug: loosely correlated object pairs get threads touching one
	// object without the other (defeating MUVI's assumption, §2.2), while
	// tightly correlated pairs get threads touching them together.
	Noise map[string][]string

	build func() (*kir.Program, error)

	once sync.Once
	prog *kir.Program
	err  error
}

// WantInstr resolves WantLabel to the static instruction identity the
// failure must manifest at (kir.NoInstr when unconstrained).
func (s *Scenario) WantInstr() kir.InstrID {
	if s.WantLabel == "" {
		return kir.NoInstr
	}
	prog, err := s.Program()
	if err != nil {
		return kir.NoInstr
	}
	in, ok := prog.ByLabel(s.WantLabel)
	if !ok {
		panic(fmt.Sprintf("scenario %s: WantLabel %q not found", s.Name, s.WantLabel))
	}
	return in.ID
}

// CorpusProgram returns the program extended with the scenario's noise
// workload — the view the statistical baselines mine. Diagnosis always
// uses Program (the slice the bug finder reported).
func (s *Scenario) CorpusProgram() (*kir.Program, error) {
	prog, err := s.Program()
	if err != nil {
		return nil, err
	}
	return prog.ExtendReaders(s.Noise)
}

// NeedsLeakCheck reports whether the scenario's failure only manifests
// through the end-of-run memory-leak oracle.
func (s *Scenario) NeedsLeakCheck() bool {
	return s.WantKind == sanitizer.KindMemoryLeak
}

// FailureClass returns the scenario's Tables 2–3 bug-type class, derived
// canonically from the failure kind (the hand-written BugType strings
// vary slightly; the matrix gate needs one spelling per class).
func (s *Scenario) FailureClass() string { return FailureClassOf(s.WantKind) }

// FailureClassOf maps a sanitizer kind to the paper's Tables 2–3
// bug-type vocabulary.
func FailureClassOf(k sanitizer.Kind) string {
	switch k {
	case sanitizer.KindBugOn:
		return "assertion violation"
	case sanitizer.KindUseAfterFree:
		return "use-after-free access"
	case sanitizer.KindNullDeref:
		return "null-pointer dereference"
	case sanitizer.KindOutOfBounds:
		return "slab-out-of-bound access"
	case sanitizer.KindDoubleFree:
		return "double free"
	case sanitizer.KindGPF:
		return "general protection fault"
	case sanitizer.KindMemoryLeak:
		return "memory leak"
	case sanitizer.KindDeadlock:
		return "deadlock"
	default:
		return k.String()
	}
}

// FailureClasses is the Tables 2–3 taxonomy the corpus must cover: every
// class listed here needs at least MinClassReps representatives for the
// `aitia-bench -check-matrix` gate to pass.
func FailureClasses() []string {
	return []string{
		"assertion violation",
		"use-after-free access",
		"null-pointer dereference",
		"slab-out-of-bound access",
		"double free",
		"general protection fault",
		"memory leak",
		"deadlock",
	}
}

// StructureClasses is the interleaving-structure taxonomy (SNIPPETS §3):
// the second axis of the bug-class matrix.
func StructureClasses() []string {
	return []string{StructAtomicity, StructOrder, StructDataRace, StructDeadlock}
}

// StructureClass returns the scenario's interleaving-structure class. An
// explicit Structure label (generated scenarios record the factory's
// classification of the diagnosed chain) wins; otherwise the class is
// derived from the ground truth: deadlocks have no chain, a length-1
// chain is a plain data race, multi-variable chains are atomicity
// violations, and the rest are order violations.
func (s *Scenario) StructureClass() string {
	if s.Structure != "" {
		return s.Structure
	}
	switch {
	case s.WantKind == sanitizer.KindDeadlock:
		return StructDeadlock
	case s.WantChainLen <= 1:
		return StructDataRace
	case s.MultiVariable:
		return StructAtomicity
	default:
		return StructOrder
	}
}

// PadAccesses returns the number of non-racing prologue accesses each
// declared thread performs before entering the racy region. Real-world
// bug scenarios (the CVE and Syzkaller groups) get a deterministic,
// scenario-specific volume modelling the non-racy kernel path of their
// system calls; figure and extension scenarios stay unpadded so their
// executions match the paper's diagrams instruction for instruction.
func (s *Scenario) PadAccesses() int {
	if s.Group != GroupCVE && s.Group != GroupSyzkaller {
		return 0
	}
	h := 0
	for _, c := range s.Name {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return 120 + h%100
}

// Program returns the scenario's finalized program (built once and
// reused; programs are immutable after Finalize).
func (s *Scenario) Program() (*kir.Program, error) {
	s.once.Do(func() {
		s.prog, s.err = s.build()
		if s.err == nil {
			s.prog, s.err = s.prog.WithPrologues(s.PadAccesses())
		}
	})
	return s.prog, s.err
}

// RawProgram returns the scenario's program without prologue padding —
// the bare racy region, used by fix construction (the fix wraps the real
// entry functions, then padding is re-applied).
func (s *Scenario) RawProgram() (*kir.Program, error) {
	return s.build()
}

// MustProgram is Program for tests and examples; it panics on error.
func (s *Scenario) MustProgram() *kir.Program {
	p, err := s.Program()
	if err != nil {
		panic(fmt.Sprintf("scenario %s: %v", s.Name, err))
	}
	return p
}

var registry = map[string]*Scenario{}

// register adds a scenario at init time.
func register(s *Scenario) *Scenario {
	if _, dup := registry[s.Name]; dup {
		panic("scenarios: duplicate " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// ByName returns a scenario by registry key.
func ByName(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns every scenario sorted by name.
func All() []*Scenario {
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByGroup returns the scenarios of one evaluation group, sorted by name.
func ByGroup(g Group) []*Scenario {
	var out []*Scenario
	for _, s := range All() {
		if s.Group == g {
			out = append(out, s)
		}
	}
	return out
}

// Table2 returns the CVE scenarios (paper Table 2).
func Table2() []*Scenario { return ByGroup(GroupCVE) }

// Table3 returns the Syzkaller scenarios (paper Table 3).
func Table3() []*Scenario { return ByGroup(GroupSyzkaller) }

// HandBuilt returns the original curated corpus (every group except
// generated), sorted by name. The perf and resilience gates (-check-lifs,
// -check-flips, -faults, -crash-resume, -kill-recover) run against this
// subset so growing the generated corpus never shifts their committed
// baselines.
func HandBuilt() []*Scenario {
	var out []*Scenario
	for _, s := range All() {
		if s.Group != GroupGenerated {
			out = append(out, s)
		}
	}
	return out
}

// Generated returns the factory-emitted corpus, sorted by name.
func Generated() []*Scenario { return ByGroup(GroupGenerated) }

// Subset resolves a named corpus subset: "all", "handbuilt", "generated",
// or any group name ("cve", "syzkaller", "figure", "extension").
func Subset(name string) ([]*Scenario, error) {
	switch name {
	case "", "all":
		return All(), nil
	case "handbuilt":
		return HandBuilt(), nil
	case "generated":
		return Generated(), nil
	case string(GroupCVE), string(GroupSyzkaller), string(GroupFigure), string(GroupExtension):
		return ByGroup(Group(name)), nil
	default:
		return nil, fmt.Errorf("scenarios: unknown corpus subset %q (want all, handbuilt, generated, or a group name)", name)
	}
}

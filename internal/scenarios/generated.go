package scenarios

import (
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// The generated corpus: factory-emitted scenarios committed under
// generated/ as a .kasm program plus a .json manifest pinning the ground
// truth the factory measured at emission time (golden chain, interleaving
// count, benign races, fix entries, synthesized crash report). They are
// registered here at init so every corpus gate — golden chains, ground
// truth, fixes, hash invariants — covers them exactly like the hand-built
// scenarios.
//
// The files are byte-reproducible: `aitia-fuzz -factory` with the same
// seed and target count re-emits the identical tree, and the
// corpus-factory CI job enforces that.
//
//go:embed generated
var generatedFS embed.FS

// GenManifest is the ground-truth sidecar the factory writes next to each
// generated .kasm program. Field order is emission order (encoding/json
// preserves struct order), so manifests are byte-stable across runs.
type GenManifest struct {
	// Name is the registry key, e.g. "gen-001-atomicity-uaf".
	Name string `json:"name"`
	// Title summarizes the bug the way a fuzzer report would.
	Title string `json:"title"`
	// Recipe names the generator template or corpus mutator that built
	// the program; Strategy the §2 scheduling strategy the finding
	// campaign ran under; Seed the campaign seed.
	Recipe   string `json:"recipe"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	// Kind is the sanitizer failure kind (sanitizer.KindByName spelling).
	Kind string `json:"kind"`
	// FailureClass and StructureClass place the scenario in the bug-class
	// matrix (Tables 2–3 bug type × interleaving structure).
	FailureClass   string `json:"failure_class"`
	StructureClass string `json:"structure_class"`
	// Ground truth measured by the factory's diagnosis at emission time.
	WantLabel         string `json:"want_label,omitempty"`
	WantChainLen      int    `json:"want_chain_len"`
	Chain             string `json:"chain"`
	WantInterleavings int    `json:"want_interleavings"`
	WantAmbiguous     bool   `json:"want_ambiguous,omitempty"`
	BenignRaces       int    `json:"benign_races"`
	Threads           int    `json:"threads"`
	// FixEntries are the entry functions a serializing patch must make
	// mutually exclusive to prevent the failure (verified at emission).
	FixEntries []string `json:"fix_entries"`
	// ReportOK records whether the synthesized crash report round-trips
	// through the report-driven diagnosis path with a non-degraded
	// resolution and strictly fewer schedules than the blind search.
	// -check-reports skips scenarios with ReportOK=false instead of
	// failing them.
	ReportOK bool `json:"report_ok"`
	// Report is the synthesized KCSAN-style crash report.
	Report string `json:"report,omitempty"`
	// CampaignRuns is how many fuzzed runs the finding took.
	CampaignRuns int `json:"campaign_runs"`
	// Minimize records the delta-debugging work.
	Minimize GenMinStats `json:"minimize"`
}

// GenMinStats summarizes one scenario's minimization.
type GenMinStats struct {
	// Schedule minimization: preemption points before and after.
	PointsBefore int `json:"points_before"`
	PointsAfter  int `json:"points_after"`
	// Program minimization: instructions and threads before and after.
	InstrsBefore  int `json:"instrs_before"`
	InstrsAfter   int `json:"instrs_after"`
	ThreadsBefore int `json:"threads_before"`
	ThreadsAfter  int `json:"threads_after"`
	// Replays is the number of oracle executions minimization spent.
	Replays int `json:"replays"`
}

func init() {
	manifests, err := LoadGenerated(generatedFS, "generated")
	if err != nil {
		panic("scenarios: embedded generated corpus: " + err.Error())
	}
	for _, gm := range manifests {
		gm := gm
		kind, ok := sanitizer.KindByName(gm.Kind)
		if !ok {
			panic(fmt.Sprintf("scenarios: generated %s: unknown kind %q", gm.Name, gm.Kind))
		}
		src, err := generatedFS.ReadFile("generated/" + gm.Name + ".kasm")
		if err != nil {
			panic(fmt.Sprintf("scenarios: generated %s: missing program: %v", gm.Name, err))
		}
		register(&Scenario{
			Name:              gm.Name,
			Title:             gm.Title,
			Group:             GroupGenerated,
			Subsystem:         gm.Recipe,
			BugType:           gm.FailureClass,
			Threads:           gm.Threads,
			WantKind:          kind,
			WantLabel:         gm.WantLabel,
			WantChainLen:      gm.WantChainLen,
			WantChain:         gm.Chain,
			WantAmbiguous:     gm.WantAmbiguous,
			WantInterleavings: gm.WantInterleavings,
			BenignRaces:       gm.BenignRaces,
			Structure:         gm.StructureClass,
			Notes:             fmt.Sprintf("factory-generated (recipe %s, strategy %s, seed %d)", gm.Recipe, gm.Strategy, gm.Seed),
			GenInfo:           &gm,
			build: func() (*kir.Program, error) {
				return kasm.Parse(string(src))
			},
		})
		GoldenChains[gm.Name] = gm.Chain
		if len(gm.FixEntries) > 0 {
			fixEntries[gm.Name] = gm.FixEntries
		}
	}
}

// LoadGenerated reads every manifest under dir in fsys (a factory output
// tree), sorted by name. The scenarios package uses it on the embedded
// corpus; the factory uses it to dedupe against an output directory.
func LoadGenerated(fsys fs.FS, dir string) ([]GenManifest, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	var out []GenManifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := fs.ReadFile(fsys, dir+"/"+e.Name())
		if err != nil {
			return nil, err
		}
		var gm GenManifest
		if err := json.Unmarshal(raw, &gm); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if gm.Name+".json" != e.Name() {
			return nil, fmt.Errorf("%s: manifest name %q does not match file", e.Name(), gm.Name)
		}
		out = append(out, gm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

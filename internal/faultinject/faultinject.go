// Package faultinject is the deterministic fault-injection layer of the
// pipeline: a seed-driven plan that decides, purely as a function of
// (seed, kind, operation, key, attempt), whether an infrastructure
// operation — a snapshot restore, a schedule enforcement, a worker-VM
// launch, a queue admission — fails. It exists so the resilience
// machinery (bounded retries, job requeue, graceful degradation to
// Partial diagnoses) can be exercised continuously in tests and in the
// chaos CI job, with reproducible failures.
//
// The design has two hard requirements, mirroring internal/obs:
//
//   - Zero cost when disabled. Every entry point is a method on a
//     possibly-nil *Plan; the nil fast path performs no allocation and
//     no atomic operation, so an uninjected pipeline runs the exact
//     pre-fault hot path.
//
//   - Determinism across worker counts. A decision depends only on the
//     plan seed and the operation's stable identity (kind, op label,
//     caller-chosen key, attempt ordinal) — never on wall time,
//     goroutine scheduling or a shared mutable counter consulted in
//     nondeterministic order. Callers key operations by deterministic
//     ordinals (flip-test index, replay, submission sequence), so for a
//     fixed seed the same faults fire whether the pipeline runs serially
//     or on eight workers, and the diagnosis verdicts come out
//     identical. The one exception is worker-VM death (keyed by a
//     plan-global sequence): which VM runs a task never affects results,
//     so its keying cannot perturb a chain.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Kind classifies an injection point by the infrastructure operation it
// breaks.
type Kind uint8

const (
	// KindSnapshotRestore fails a machine/memory snapshot restore (the
	// VM-revert between search and diagnosis runs).
	KindSnapshotRestore Kind = iota
	// KindEnforceStall stalls a schedule enforcement: the run aborts
	// after a deterministic number of executed steps, as if the VM had
	// stopped making progress and the per-attempt watchdog fired.
	KindEnforceStall
	// KindWorkerDeath kills a worker VM at launch (the paper's fleet of
	// reproducer/diagnoser VMs losing an instance).
	KindWorkerDeath
	// KindQueueAdmit fails a job admission into the service queue (a
	// transient hiccup surfaced to clients as 429 backpressure).
	KindQueueAdmit
	// KindPrefixRestore corrupts a pinned prefix-cache snapshot at restore
	// time: the incremental-replay cache must degrade to a from-scratch
	// replay instead of resuming from (possibly wrong) cached state.
	KindPrefixRestore
	// KindNodeDeath kills a fleet node (the SIGKILL of a whole
	// aitia-serve replica): every branch execution in flight on it is
	// lost and its leases run out. Keyed by the branch's stable identity
	// (phase budget, unit ordinal), never by which node drew the work, so
	// the same deaths fire regardless of fleet size or placement.
	KindNodeDeath
	// KindLeaseExpiry expires a branch lease before its holder's result
	// arrives, as if the holder stopped heartbeating: the coordinator
	// must reclaim the lease, bump the fencing token and re-execute the
	// branch — with results identical to the first execution.
	KindLeaseExpiry
	// KindPartition drops one peer-to-peer fleet message (a job handoff,
	// a branch dispatch, a heartbeat), as a network partition would. A
	// fully partitioned coordinator must degrade to local serial search
	// with a machine-readable PartialReason rather than hang.
	KindPartition

	numKinds = 8
)

// String returns the kind's metric label.
func (k Kind) String() string {
	switch k {
	case KindSnapshotRestore:
		return "snapshot-restore"
	case KindEnforceStall:
		return "enforce-stall"
	case KindWorkerDeath:
		return "worker-death"
	case KindQueueAdmit:
		return "queue-admit"
	case KindPrefixRestore:
		return "prefix-restore"
	case KindNodeDeath:
		return "node-death"
	case KindLeaseExpiry:
		return "lease-expiry"
	case KindPartition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Kinds lists every injection kind, for metric exporters.
func Kinds() []Kind {
	return []Kind{
		KindSnapshotRestore, KindEnforceStall, KindWorkerDeath, KindQueueAdmit,
		KindPrefixRestore, KindNodeDeath, KindLeaseExpiry, KindPartition,
	}
}

// Fault is the error an injection point returns when the plan fires. It
// carries the operation's full identity, so degradation reasons stay
// machine-readable end to end.
type Fault struct {
	Kind    Kind
	Op      string // injection-point label, e.g. "ca.flip", "lifs.replay"
	Key     uint64 // caller-chosen stable identity (flip index, sequence)
	Attempt int
}

// Error renders the fault.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s during %s (key %d, attempt %d)", f.Kind, f.Op, f.Key, f.Attempt)
}

// Is reports whether err is (or wraps) an injected fault — the error
// class that retries, requeues and degradation apply to, as opposed to
// genuine pipeline bugs, which must keep failing loudly.
func Is(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Stats is a point-in-time snapshot of a plan's activity, indexed by
// Kind for the per-kind arrays.
type Stats struct {
	Checks    [numKinds]uint64 // decision points consulted
	Fired     [numKinds]uint64 // faults injected
	Retries   uint64           // re-attempts of faulted operations (attempt > 0 checks)
	Exhausted uint64           // operations that ran out of retry budget
}

// counters holds a plan's atomics. Fork shares them, so a requeued job's
// derived plan still feeds the same aitia_fault_* metrics.
type counters struct {
	checks    [numKinds]atomic.Uint64
	fired     [numKinds]atomic.Uint64
	retries   atomic.Uint64
	exhausted atomic.Uint64
	seq       atomic.Uint64
}

// Plan is a deterministic fault plan. The zero value is not usable; a
// nil *Plan is: every method no-ops (and Check always passes), so
// callers thread an optional plan without branching.
type Plan struct {
	seed int64
	rate [numKinds]float64
	c    *counters
}

// NewPlan returns a plan injecting every kind at the given rate
// (fraction of decision points in [0, 1]) under the given seed.
func NewPlan(seed int64, rate float64) *Plan {
	p := &Plan{seed: seed, c: &counters{}}
	for k := range p.rate {
		p.rate[k] = rate
	}
	return p
}

// SetRate overrides one kind's injection rate and returns the plan, so
// tests can isolate a single failure class (rate 1 forces it, rate 0
// disables it).
func (p *Plan) SetRate(k Kind, rate float64) *Plan {
	p.rate[k] = rate
	return p
}

// Seed returns the plan seed (0 when disabled).
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Enabled reports whether faults can fire.
func (p *Plan) Enabled() bool { return p != nil }

// Fork derives a plan whose decisions are independent of the parent's
// (seed remixed with epoch) but whose counters are shared. The service
// forks per requeue attempt: a deterministically faulted job would
// otherwise fail identically on every requeue, which is not how the
// transient failures requeue exists for behave.
func (p *Plan) Fork(epoch uint64) *Plan {
	if p == nil || epoch == 0 {
		return p
	}
	fp := &Plan{seed: int64(mix(uint64(p.seed), 0x9e3779b97f4a7c15^epoch)), c: p.c}
	fp.rate = p.rate
	return fp
}

// Seq returns a fresh plan-global sequence number, the key for
// operations with no natural stable identity (worker-VM launches, whose
// outcome never affects diagnosis results). 0 when disabled.
func (p *Plan) Seq() uint64 {
	if p == nil {
		return 0
	}
	return p.c.seq.Add(1)
}

// Check decides whether the operation identified by (kind, op, key,
// attempt) fails under this plan, returning the *Fault when it does.
// The decision is a pure function of the identity: re-checking the same
// identity always answers the same, and attempt is part of it — which
// is what makes bounded retries converge (the chance that every attempt
// of one operation fires is rate^attempts).
func (p *Plan) Check(k Kind, op string, key uint64, attempt int) error {
	if p == nil {
		return nil
	}
	p.c.checks[k].Add(1)
	if attempt > 0 {
		p.c.retries.Add(1)
	}
	if !p.fires(k, op, key, attempt) {
		return nil
	}
	p.c.fired[k].Add(1)
	return &Fault{Kind: k, Op: op, Key: key, Attempt: attempt}
}

// StallStep is Check for KindEnforceStall, returning the executed-step
// count at which the stall manifests (the enforcement runs normally up
// to it, then aborts), or -1 when the plan does not fire there.
func (p *Plan) StallStep(op string, key uint64, attempt int) int {
	if p == nil {
		return -1
	}
	p.c.checks[KindEnforceStall].Add(1)
	if attempt > 0 {
		p.c.retries.Add(1)
	}
	if !p.fires(KindEnforceStall, op, key, attempt) {
		return -1
	}
	p.c.fired[KindEnforceStall].Add(1)
	// Stall within the first few dozen steps: early enough that every
	// scenario run reaches it, varied enough to exercise mid-run aborts.
	return int(p.hash(KindEnforceStall, op, key, attempt, 1) % 48)
}

// NoteExhausted records that an operation ran out of retry budget.
func (p *Plan) NoteExhausted() {
	if p == nil {
		return
	}
	p.c.exhausted.Add(1)
}

// Stats snapshots the plan's counters (zero value when disabled).
func (p *Plan) Stats() Stats {
	var st Stats
	if p == nil {
		return st
	}
	for k := 0; k < numKinds; k++ {
		st.Checks[k] = p.c.checks[k].Load()
		st.Fired[k] = p.c.fired[k].Load()
	}
	st.Retries = p.c.retries.Load()
	st.Exhausted = p.c.exhausted.Load()
	return st
}

// fires evaluates the plan's decision function.
func (p *Plan) fires(k Kind, op string, key uint64, attempt int) bool {
	r := p.rate[k]
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	// 53 uniform bits → [0, 1).
	u := float64(p.hash(k, op, key, attempt, 0)>>11) / float64(uint64(1)<<53)
	return u < r
}

// hash mixes the operation identity under the seed. salt separates the
// fire decision from derived draws (the stall step).
func (p *Plan) hash(k Kind, op string, key uint64, attempt int, salt uint64) uint64 {
	// FNV-1a over the op label, allocation-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(op); i++ {
		h ^= uint64(op[i])
		h *= 1099511628211
	}
	h = mix(h, uint64(p.seed))
	h = mix(h, uint64(k)|salt<<8)
	h = mix(h, key)
	h = mix(h, uint64(attempt))
	return h
}

// mix is the splitmix64 finalizer over a ^ b.
func mix(a, b uint64) uint64 {
	z := a ^ b
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package faultinject

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryPolicy bounds and paces re-execution of a faultable operation
// (a flip test, a replay, a worker-VM launch, a job requeue).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values < 1 mean 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the second attempt; each further
	// attempt doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout, when positive, bounds each attempt with its own
	// context deadline; an attempt that exceeds it counts as a transient
	// failure and is retried like an injected fault.
	AttemptTimeout time.Duration
	// SkipBackoff, when closed, cuts every in-flight backoff sleep short
	// (the remaining attempts still run, immediately). The service wires
	// its drain signal here so shutdown never stalls behind a sleeping
	// retry loop.
	SkipBackoff <-chan struct{}
}

// DefaultRetry is the policy used when a caller leaves the knobs zero:
// five attempts with 2ms..250ms exponential backoff. At the default 10%
// injection rate that leaves ~1e-5 of operations exhausting the budget.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 5,
	BaseBackoff: 2 * time.Millisecond,
	MaxBackoff:  250 * time.Millisecond,
}

// Normalized returns the policy with zero knobs replaced by DefaultRetry
// values (MaxAttempts < 0 stays a strict single attempt).
func (rp RetryPolicy) Normalized() RetryPolicy {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = DefaultRetry.MaxAttempts
	}
	if rp.MaxAttempts < 1 {
		rp.MaxAttempts = 1
	}
	if rp.BaseBackoff == 0 {
		rp.BaseBackoff = DefaultRetry.BaseBackoff
	}
	if rp.MaxBackoff == 0 {
		rp.MaxBackoff = DefaultRetry.MaxBackoff
	}
	return rp
}

// Backoff returns the sleep between attempt n and n+1 (n counts from 1).
func (rp RetryPolicy) Backoff(n int) time.Duration {
	d := rp.BaseBackoff
	for ; n > 1 && d < rp.MaxBackoff; n-- {
		d *= 2
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	return d
}

// ErrExhausted wraps the final error when every attempt failed; check it
// with errors.Is to distinguish "retried and gave up" (degrade) from a
// first-class failure.
var ErrExhausted = errors.New("faultinject: retry budget exhausted")

// Do runs op under the policy: op(ctx, attempt) with attempt counting
// from 0, retried while it returns an injected fault or overruns its
// per-attempt timeout. Any other error returns immediately — retries
// are for the planned transient failures, not for masking bugs. When
// the budget runs out, the final error is wrapped with ErrExhausted
// (still matching Is) and counted on the plan.
func Do(ctx context.Context, p *Plan, rp RetryPolicy, op func(ctx context.Context, attempt int) error) error {
	rp = rp.Normalized()
	var err error
	for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
		if attempt > 0 {
			if serr := sleep(ctx, rp.Backoff(attempt), rp.SkipBackoff); serr != nil {
				return serr
			}
		}
		actx, cancel := ctx, context.CancelFunc(nil)
		if rp.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, rp.AttemptTimeout)
		}
		err = op(actx, attempt)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if perr := ctx.Err(); perr != nil {
			// The caller's context ended; its error wins over whatever
			// the aborted attempt reported.
			return perr
		}
		if !Is(err) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	p.NoteExhausted()
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, rp.MaxAttempts, err)
}

// sleep waits for d, returning early (nil) when skip closes or with the
// context's error when it ends first.
func sleep(ctx context.Context, d time.Duration, skip <-chan struct{}) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-skip: // nil channel: never selected
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCheckDeterministic(t *testing.T) {
	p := NewPlan(42, 0.3)
	q := NewPlan(42, 0.3)
	for key := uint64(0); key < 200; key++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := p.Check(KindSnapshotRestore, "ca.flip", key, attempt)
			b := q.Check(KindSnapshotRestore, "ca.flip", key, attempt)
			if (a == nil) != (b == nil) {
				t.Fatalf("same identity, different decision at key=%d attempt=%d", key, attempt)
			}
		}
	}
}

func TestCheckOrderIndependent(t *testing.T) {
	// The decision for one identity must not depend on how many or which
	// other identities were checked before it — that is what makes
	// parallel and serial runs inject the same faults.
	p := NewPlan(7, 0.5)
	want := p.Check(KindEnforceStall, "lifs.replay", 123, 0)
	q := NewPlan(7, 0.5)
	for key := uint64(0); key < 1000; key++ {
		q.Check(KindEnforceStall, "lifs.replay", key+1000, 0)
	}
	got := q.Check(KindEnforceStall, "lifs.replay", 123, 0)
	if (want == nil) != (got == nil) {
		t.Fatalf("decision changed with interleaved checks")
	}
}

func TestRateExtremesAndKindIsolation(t *testing.T) {
	p := NewPlan(1, 0).SetRate(KindWorkerDeath, 1)
	for key := uint64(0); key < 50; key++ {
		if err := p.Check(KindQueueAdmit, "service.admit", key, 0); err != nil {
			t.Fatalf("rate-0 kind fired: %v", err)
		}
		err := p.Check(KindWorkerDeath, "lifs.worker-vm", key, 0)
		if err == nil {
			t.Fatalf("rate-1 kind did not fire at key %d", key)
		}
		var f *Fault
		if !errors.As(err, &f) || f.Kind != KindWorkerDeath || f.Key != key {
			t.Fatalf("bad fault identity: %v", err)
		}
	}
}

func TestRateRoughlyHolds(t *testing.T) {
	p := NewPlan(99, 0.2)
	fired := 0
	const n = 5000
	for key := uint64(0); key < n; key++ {
		if p.Check(KindSnapshotRestore, "x", key, 0) != nil {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("rate 0.2 produced %.3f", got)
	}
}

func TestAttemptChangesDecision(t *testing.T) {
	// Retries must be able to succeed: across many keys that fire at
	// attempt 0, a healthy fraction must pass at attempt 1.
	p := NewPlan(3, 0.5)
	firedBoth, firedFirst := 0, 0
	for key := uint64(0); key < 2000; key++ {
		if p.Check(KindSnapshotRestore, "y", key, 0) == nil {
			continue
		}
		firedFirst++
		if p.Check(KindSnapshotRestore, "y", key, 1) != nil {
			firedBoth++
		}
	}
	if firedFirst == 0 {
		t.Fatal("no faults at rate 0.5")
	}
	if firedBoth == firedFirst {
		t.Fatal("attempt number does not influence the decision; retries can never succeed")
	}
}

func TestForkChangesDecisionsSharesStats(t *testing.T) {
	p := NewPlan(11, 0.5)
	f := p.Fork(1)
	if f == p {
		t.Fatal("Fork(1) returned the parent plan")
	}
	same := 0
	const n = 500
	for key := uint64(0); key < n; key++ {
		a := p.Check(KindQueueAdmit, "z", key, 0) != nil
		b := f.Check(KindQueueAdmit, "z", key, 0) != nil
		if a == b {
			same++
		}
	}
	if same == n {
		t.Fatal("forked plan makes identical decisions")
	}
	st := p.Stats()
	if got := st.Checks[KindQueueAdmit]; got != 2*n {
		t.Fatalf("fork does not share counters: %d checks, want %d", got, 2*n)
	}
	if p.Fork(0) != p {
		t.Fatal("Fork(0) must be the identity")
	}
}

func TestStallStep(t *testing.T) {
	p := NewPlan(5, 1)
	s := p.StallStep("sched.enforce", 9, 0)
	if s < 0 || s >= 48 {
		t.Fatalf("stall step %d out of range", s)
	}
	if again := p.StallStep("sched.enforce", 9, 0); again != s {
		t.Fatalf("stall step not deterministic: %d then %d", s, again)
	}
	var none *Plan
	if none.StallStep("sched.enforce", 9, 0) != -1 {
		t.Fatal("nil plan must not stall")
	}
}

func TestNilPlanSafe(t *testing.T) {
	var p *Plan
	if p.Check(KindSnapshotRestore, "op", 1, 0) != nil {
		t.Fatal("nil plan fired")
	}
	if p.Enabled() || p.Seed() != 0 || p.Seq() != 0 {
		t.Fatal("nil plan accessors not zero")
	}
	p.NoteExhausted()
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("nil plan stats: %+v", st)
	}
	if p.Fork(3) != nil {
		t.Fatal("nil plan fork must stay nil")
	}
}

func TestNilPlanZeroAlloc(t *testing.T) {
	var p *Plan
	allocs := testing.AllocsPerRun(1000, func() {
		if p.Check(KindSnapshotRestore, "ca.flip", 7, 0) != nil {
			t.Fatal("fired")
		}
		if p.StallStep("sched.enforce", 7, 0) != -1 {
			t.Fatal("stalled")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil fast path allocates: %v allocs/op", allocs)
	}
}

func BenchmarkNilPlanCheck(b *testing.B) {
	var p *Plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Check(KindSnapshotRestore, "ca.flip", uint64(i), 0) != nil {
			b.Fatal("fired")
		}
	}
}

func BenchmarkPlanCheck(b *testing.B) {
	p := NewPlan(1, 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Check(KindSnapshotRestore, "ca.flip", uint64(i), 0)
	}
}

func TestDoRetriesFaultsOnly(t *testing.T) {
	ctx := context.Background()
	rp := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}

	// Injected faults are retried until an attempt passes.
	calls := 0
	err := Do(ctx, nil, rp, func(ctx context.Context, attempt int) error {
		calls++
		if attempt < 2 {
			return &Fault{Kind: KindSnapshotRestore, Op: "t", Key: 1, Attempt: attempt}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("got err=%v calls=%d, want nil/3", err, calls)
	}

	// Non-fault errors fail fast.
	calls = 0
	boom := errors.New("boom")
	err = Do(ctx, nil, rp, func(ctx context.Context, attempt int) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("got err=%v calls=%d, want boom/1", err, calls)
	}
}

func TestDoExhaustion(t *testing.T) {
	p := NewPlan(1, 1)
	rp := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	calls := 0
	err := Do(context.Background(), p, rp, func(ctx context.Context, attempt int) error {
		calls++
		return &Fault{Kind: KindEnforceStall, Op: "t", Key: 2, Attempt: attempt}
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, ErrExhausted) || !Is(err) {
		t.Fatalf("exhaustion error %v must match ErrExhausted and Is", err)
	}
	if st := p.Stats(); st.Exhausted != 1 {
		t.Fatalf("exhausted counter = %d, want 1", st.Exhausted)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	rp := RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    time.Microsecond,
		MaxBackoff:     time.Microsecond,
		AttemptTimeout: 5 * time.Millisecond,
	}
	calls := 0
	err := Do(context.Background(), nil, rp, func(ctx context.Context, attempt int) error {
		calls++
		if attempt == 0 {
			<-ctx.Done() // overrun the per-attempt deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("got err=%v calls=%d, want nil/2", err, calls)
	}
}

func TestDoParentCancelWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rp := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Hour, MaxBackoff: time.Hour}
	err := Do(ctx, nil, rp, func(ctx context.Context, attempt int) error {
		cancel()
		return &Fault{Kind: KindWorkerDeath, Op: "t", Key: 3, Attempt: attempt}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoSkipBackoffCutsSleep(t *testing.T) {
	skip := make(chan struct{})
	close(skip)
	rp := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Hour, MaxBackoff: time.Hour, SkipBackoff: skip}
	start := time.Now()
	calls := 0
	err := Do(context.Background(), nil, rp, func(ctx context.Context, attempt int) error {
		calls++
		if attempt < 2 {
			return &Fault{Kind: KindQueueAdmit, Op: "t", Key: 4, Attempt: attempt}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("got err=%v calls=%d, want nil/3", err, calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backoff not skipped: took %v", elapsed)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if s := k.String(); s == "" || s == fmt.Sprintf("kind(%d)", uint8(k)) {
			t.Fatalf("kind %d has no label", uint8(k))
		}
	}
}

// Package sanitizer defines the failure model of the simulated kernel: the
// failure kinds a run can end with (the union of KASAN report types,
// BUG_ON/WARN assertions, refcount warnings, memory leaks and watchdog
// events seen in the paper's Tables 2–3) and the crash-report rendering
// that serves as AITIA's "failure information" input.
package sanitizer

import (
	"fmt"
	"strings"

	"aitia/internal/kir"
	"aitia/internal/mem"
)

// Kind classifies a kernel failure.
type Kind uint8

const (
	// KindNone means the run did not fail.
	KindNone Kind = iota
	// KindNullDeref is a NULL pointer dereference.
	KindNullDeref
	// KindUseAfterFree is a KASAN use-after-free report.
	KindUseAfterFree
	// KindOutOfBounds is a KASAN slab-out-of-bounds report.
	KindOutOfBounds
	// KindGPF is a general protection fault (wild access).
	KindGPF
	// KindDoubleFree is a KASAN double-free report.
	KindDoubleFree
	// KindBadFree is a KASAN invalid-free report.
	KindBadFree
	// KindBugOn is a BUG_ON assertion violation.
	KindBugOn
	// KindRefcount is a refcount_t warning (saturation/underflow).
	KindRefcount
	// KindMemoryLeak is a kmemleak-style report at thread completion.
	KindMemoryLeak
	// KindBadUnlock is a release of a lock the thread does not hold.
	KindBadUnlock
	// KindDeadlock means every unfinished thread is blocked on a lock.
	KindDeadlock
	// KindWatchdog means the run exceeded its step budget (soft lockup).
	KindWatchdog
)

// String returns the crash-report name of the failure kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "no failure"
	case KindNullDeref:
		return "NULL pointer dereference"
	case KindUseAfterFree:
		return "KASAN: use-after-free"
	case KindOutOfBounds:
		return "KASAN: slab-out-of-bounds"
	case KindGPF:
		return "general protection fault"
	case KindDoubleFree:
		return "KASAN: double-free"
	case KindBadFree:
		return "KASAN: invalid-free"
	case KindBugOn:
		return "kernel BUG (BUG_ON)"
	case KindRefcount:
		return "WARNING: refcount bug"
	case KindMemoryLeak:
		return "memory leak"
	case KindBadUnlock:
		return "WARNING: bad unlock balance"
	case KindDeadlock:
		return "INFO: task hung (deadlock)"
	case KindWatchdog:
		return "watchdog: soft lockup"
	default:
		return fmt.Sprintf("failure(%d)", uint8(k))
	}
}

// AllKinds lists every failure kind (excluding KindNone).
func AllKinds() []Kind {
	return []Kind{
		KindNullDeref, KindUseAfterFree, KindOutOfBounds, KindGPF,
		KindDoubleFree, KindBadFree, KindBugOn, KindRefcount,
		KindMemoryLeak, KindBadUnlock, KindDeadlock, KindWatchdog,
	}
}

// KindByName resolves a failure kind from its String form.
func KindByName(name string) (Kind, bool) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return KindNone, false
}

// FromFault maps a memory fault to the corresponding failure kind.
func FromFault(f *mem.Fault) Kind {
	switch f.Kind {
	case mem.FaultNullDeref:
		return KindNullDeref
	case mem.FaultUseAfterFree:
		return KindUseAfterFree
	case mem.FaultOutOfBounds:
		return KindOutOfBounds
	case mem.FaultWild:
		return KindGPF
	case mem.FaultDoubleFree:
		return KindDoubleFree
	case mem.FaultBadFree:
		return KindBadFree
	default:
		return KindNone
	}
}

// Failure describes a manifested kernel failure: the symptom and its
// location, which together form the "failure information" AITIA consumes
// (§4.2 of the paper).
type Failure struct {
	Kind   Kind
	Thread string      // failing thread name
	Instr  kir.InstrID // failing instruction
	Addr   uint64      // faulting address, when applicable
	Msg    string      // extra context (alloc/free sites, lock, ...)
}

// Error implements the error interface.
func (f *Failure) Error() string {
	if f == nil {
		return "no failure"
	}
	s := fmt.Sprintf("%s in %s", f.Kind, f.Thread)
	if f.Msg != "" {
		s += ": " + f.Msg
	}
	return s
}

// SameSymptom reports whether two failures present the same symptom: the
// same kind at the same failing instruction. Causality Analysis uses this
// to decide whether a perturbed run reproduces "the" failure rather than
// some other one.
func (f *Failure) SameSymptom(other *Failure) bool {
	if f == nil || other == nil {
		return f == other
	}
	return f.Kind == other.Kind && f.Instr == other.Instr
}

// Report renders a crash report in the spirit of a Linux oops: symptom
// line, failing location, and context. prog supplies instruction names.
func (f *Failure) Report(prog *kir.Program) string {
	if f == nil {
		return "no failure\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Kind)
	if in, ok := prog.Instr(f.Instr); ok {
		fmt.Fprintf(&b, "RIP: %s (%s) in %s\n", in.Name(), in.String(), in.Fn)
	}
	fmt.Fprintf(&b, "CPU: thread %s\n", f.Thread)
	if f.Addr != 0 {
		fmt.Fprintf(&b, "Access address: %#x\n", f.Addr)
	}
	if f.Msg != "" {
		fmt.Fprintf(&b, "Context: %s\n", f.Msg)
	}
	return b.String()
}

package sanitizer

import (
	"strings"
	"testing"

	"aitia/internal/kir"
	"aitia/internal/mem"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("nonsense"); ok {
		t.Error("KindByName(nonsense) should fail")
	}
}

func TestFromFault(t *testing.T) {
	cases := map[mem.FaultKind]Kind{
		mem.FaultNullDeref:    KindNullDeref,
		mem.FaultUseAfterFree: KindUseAfterFree,
		mem.FaultOutOfBounds:  KindOutOfBounds,
		mem.FaultWild:         KindGPF,
		mem.FaultDoubleFree:   KindDoubleFree,
		mem.FaultBadFree:      KindBadFree,
	}
	for fk, want := range cases {
		if got := FromFault(&mem.Fault{Kind: fk}); got != want {
			t.Errorf("FromFault(%v) = %v, want %v", fk, got, want)
		}
	}
}

func TestSameSymptom(t *testing.T) {
	a := &Failure{Kind: KindBugOn, Instr: 5}
	b := &Failure{Kind: KindBugOn, Instr: 5, Thread: "other"}
	c := &Failure{Kind: KindBugOn, Instr: 6}
	d := &Failure{Kind: KindUseAfterFree, Instr: 5}
	if !a.SameSymptom(b) {
		t.Error("same kind+instr should match regardless of thread")
	}
	if a.SameSymptom(c) || a.SameSymptom(d) {
		t.Error("different instr or kind must not match")
	}
	var nilF *Failure
	if nilF.SameSymptom(a) || a.SameSymptom(nil) {
		t.Error("nil mismatch")
	}
	if !nilF.SameSymptom(nil) {
		t.Error("nil == nil")
	}
}

func TestReportRendering(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("f")
	f.BugOn(kir.Imm(1)).L("X1")
	b.Thread("T", "f")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := prog.ByLabel("X1")
	fail := &Failure{Kind: KindBugOn, Thread: "T", Instr: in.ID, Msg: "boom"}
	rep := fail.Report(prog)
	for _, want := range []string{"kernel BUG", "X1", "thread T", "boom"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if got := fail.Error(); !strings.Contains(got, "BUG") || !strings.Contains(got, "boom") {
		t.Errorf("Error() = %q", got)
	}
}

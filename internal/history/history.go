// Package history models AITIA's input side (paper §4.2): timestamped
// execution traces from a bug-finding system — system calls with their
// arguments and the invocation events of kernel background threads — and
// the slicing of those traces into groups of concurrently executed
// threads (slices) created backward from the failure point.
//
// In the paper the traces come from ftrace and a crash coredump; here they
// come from the fuzzer's (or any run's) event log, carrying the same
// information: what ran when, who invoked which background thread, and
// where the kernel failed.
package history

import (
	"fmt"
	"sort"
	"strings"

	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	// SyscallEnter marks a system-call thread starting.
	SyscallEnter EventKind = iota
	// SyscallExit marks a system-call thread finishing.
	SyscallExit
	// ThreadInvoke marks a background-thread invocation (queue_work or
	// call_rcu), with Source naming the invoking thread.
	ThreadInvoke
	// CrashEvent marks the failure manifestation.
	CrashEvent
)

// String returns the trace name of the event kind.
func (k EventKind) String() string {
	switch k {
	case SyscallEnter:
		return "sys_enter"
	case SyscallExit:
		return "sys_exit"
	case ThreadInvoke:
		return "invoke"
	case CrashEvent:
		return "crash"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one timestamped trace entry. Timestamps are fine-grained
// logical times (instruction step numbers in the simulated kernel), which
// is what AITIA needs them for: identifying concurrent events.
type Event struct {
	TS     uint64
	Kind   EventKind
	Thread string
	Source string // invoking thread, for ThreadInvoke
	FD     int    // file descriptor the syscall operates on; -1 if none
}

// Trace is a full execution history with failure information.
type Trace struct {
	Events []Event
	Crash  *sanitizer.Failure
	// FDs maps each thread to the file descriptor its syscall operates
	// on (used for the open/close semantic closure); -1 or absent if none.
	FDs map[string]int
}

// Format renders the trace like a compact ftrace log.
func (t *Trace) Format() string {
	var b strings.Builder
	for _, e := range t.Events {
		switch e.Kind {
		case ThreadInvoke:
			fmt.Fprintf(&b, "[%06d] %s: %s (from %s)\n", e.TS, e.Kind, e.Thread, e.Source)
		default:
			fmt.Fprintf(&b, "[%06d] %s: %s\n", e.TS, e.Kind, e.Thread)
		}
	}
	if t.Crash != nil {
		fmt.Fprintf(&b, "crash: %v\n", t.Crash)
	}
	return b.String()
}

// FromRun synthesizes a trace from an executed run: enter/exit events at
// each thread's first/last step, invoke events at spawn steps, and the
// crash. fds optionally assigns file descriptors to syscall threads.
func FromRun(res *sched.RunResult, fds map[string]int) *Trace {
	tr := &Trace{Crash: res.Failure, FDs: fds}
	first := make(map[string]int)
	last := make(map[string]int)
	for _, e := range res.Seq {
		if _, ok := first[e.Name]; !ok {
			first[e.Name] = e.Step
		}
		last[e.Name] = e.Step
	}
	for _, e := range res.Seq {
		if first[e.Name] == e.Step {
			tr.Events = append(tr.Events, Event{
				TS: uint64(e.Step), Kind: SyscallEnter, Thread: e.Name, FD: fdOf(fds, e.Name),
			})
		}
		if e.Spawned != "" {
			tr.Events = append(tr.Events, Event{
				TS: uint64(e.Step), Kind: ThreadInvoke, Thread: e.Spawned, Source: e.Name,
			})
		}
		if last[e.Name] == e.Step {
			tr.Events = append(tr.Events, Event{
				TS: uint64(e.Step), Kind: SyscallExit, Thread: e.Name, FD: fdOf(fds, e.Name),
			})
		}
	}
	if res.Failure != nil {
		tr.Events = append(tr.Events, Event{
			TS: uint64(len(res.Seq)), Kind: CrashEvent, Thread: res.Failure.Thread,
		})
	}
	return tr
}

func fdOf(fds map[string]int, thread string) int {
	if fds == nil {
		return -1
	}
	if fd, ok := fds[thread]; ok {
		return fd
	}
	return -1
}

// Slice is a group of threads that executed concurrently — the unit of
// work handed to one reproducer (§4.2). Threads holds the system-call
// thread names to schedule (background threads spawn dynamically and are
// not listed).
type Slice struct {
	Threads []string
	// Window is the [start, end] logical-time span the slice covers.
	Window [2]uint64
	// Distance orders slices by how far their window sits from the
	// failure point (0 = contains the failure).
	Distance uint64
}

// String renders the slice for logs.
func (s Slice) String() string {
	return fmt.Sprintf("{%s}", strings.Join(s.Threads, ", "))
}

// MaxSliceThreads caps the number of threads per slice; the paper finds
// failures needing more than three contexts to be rare (§4.2 fn. 3) and
// splits larger concurrency groups.
const MaxSliceThreads = 3

// Model splits a trace into candidate slices, backward from the failure
// point: threads whose [enter, exit] windows overlap are grouped; groups
// larger than MaxSliceThreads are split into all combinations of that
// size that include the group's latest thread; and the open/close
// semantic closure adds the syscalls operating on the same file
// descriptor as any slice member. Slices are ordered nearest-to-failure
// first — the order reproducers should try them in.
func Model(tr *Trace) []Slice {
	var wins []window
	enter := make(map[string]uint64)
	byName := make(map[string]*window)
	for _, e := range tr.Events {
		switch e.Kind {
		case SyscallEnter:
			enter[e.Thread] = e.TS
		case SyscallExit:
			w := window{name: e.Thread, start: enter[e.Thread], end: e.TS, fd: fdOf(tr.FDs, e.Thread)}
			wins = append(wins, w)
			byName[e.Thread] = &wins[len(wins)-1]
		}
	}
	// Threads cut short by the crash never exit; close their windows at
	// the crash time.
	var crashTS uint64
	for _, e := range tr.Events {
		if e.Kind == CrashEvent {
			crashTS = e.TS
		}
	}
	for name, ts := range enter {
		if _, ok := byName[name]; !ok {
			w := window{name: name, start: ts, end: crashTS, fd: fdOf(tr.FDs, name)}
			wins = append(wins, w)
			byName[name] = &wins[len(wins)-1]
		}
	}
	// Skip dynamically spawned threads: they are re-created by the
	// replayed syscalls themselves.
	spawned := make(map[string]bool)
	for _, e := range tr.Events {
		if e.Kind == ThreadInvoke {
			spawned[e.Thread] = true
		}
	}
	var syscalls []window
	for _, w := range wins {
		if !spawned[w.name] {
			syscalls = append(syscalls, w)
		}
	}
	sort.Slice(syscalls, func(i, j int) bool { return syscalls[i].end > syscalls[j].end })

	// Group overlapping windows, starting from the thread closest to the
	// failure and walking backward.
	var slices []Slice
	seen := make(map[string]bool)
	for _, anchor := range syscalls {
		group := []window{anchor}
		for _, w := range syscalls {
			if w.name == anchor.name {
				continue
			}
			if w.start <= anchor.end && anchor.start <= w.end {
				group = append(group, w)
			}
		}
		group = fdClosure(group, syscalls)
		for _, combo := range combinations(group, anchor) {
			sl := Slice{}
			for _, w := range combo {
				sl.Threads = append(sl.Threads, w.name)
				if w.start < sl.Window[0] || sl.Window[0] == 0 {
					sl.Window[0] = w.start
				}
				if w.end > sl.Window[1] {
					sl.Window[1] = w.end
				}
			}
			sort.Strings(sl.Threads)
			if crashTS >= sl.Window[1] {
				sl.Distance = crashTS - sl.Window[1]
			}
			key := strings.Join(sl.Threads, "\x00")
			if !seen[key] {
				seen[key] = true
				slices = append(slices, sl)
			}
		}
	}
	sort.SliceStable(slices, func(i, j int) bool {
		if slices[i].Distance != slices[j].Distance {
			return slices[i].Distance < slices[j].Distance
		}
		return len(slices[i].Threads) > len(slices[j].Threads)
	})
	return slices
}

// fdClosure adds, for every fd used in the group, the other syscalls
// operating on the same fd ("if write() is in a slice, add open() and
// close() of the same file descriptor", §4.2).
func fdClosure(group, all []window) []window {
	fds := make(map[int]bool)
	have := make(map[string]bool)
	for _, w := range group {
		have[w.name] = true
		if w.fd >= 0 {
			fds[w.fd] = true
		}
	}
	for _, w := range all {
		if w.fd >= 0 && fds[w.fd] && !have[w.name] {
			group = append(group, w)
			have[w.name] = true
		}
	}
	return group
}

// window is a thread's [enter, exit] span in the trace.
type window struct {
	name       string
	start, end uint64
	fd         int
}

// combinations yields the ≤MaxSliceThreads-sized thread combinations of a
// group; every combination keeps the anchor (the thread nearest the
// failure). Small inputs only: groups have at most a handful of threads.
func combinations(group []window, anchor window) [][]window {
	if len(group) <= MaxSliceThreads {
		return [][]window{group}
	}
	var rest []window
	for _, w := range group {
		if w.name != anchor.name {
			rest = append(rest, w)
		}
	}
	var out [][]window
	k := MaxSliceThreads - 1
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		combo := []window{anchor}
		for _, i := range idx {
			combo = append(combo, rest[i])
		}
		out = append(out, combo)
		// next combination
		i := k - 1
		for i >= 0 && idx[i] == len(rest)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

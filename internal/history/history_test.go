package history

import (
	"strings"
	"testing"
	"testing/quick"

	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// trace builds a synthetic trace: per thread (name, enter, exit) windows
// plus a crash.
func trace(crashTS uint64, crashThread string, wins ...[3]interface{}) *Trace {
	tr := &Trace{FDs: map[string]int{}}
	for _, w := range wins {
		name := w[0].(string)
		tr.Events = append(tr.Events,
			Event{TS: uint64(w[1].(int)), Kind: SyscallEnter, Thread: name},
			Event{TS: uint64(w[2].(int)), Kind: SyscallExit, Thread: name},
		)
	}
	tr.Crash = &sanitizer.Failure{Kind: sanitizer.KindBugOn, Thread: crashThread}
	tr.Events = append(tr.Events, Event{TS: crashTS, Kind: CrashEvent, Thread: crashThread})
	return tr
}

func TestModelGroupsOverlappingWindows(t *testing.T) {
	tr := trace(100, "c",
		[3]interface{}{"a", 0, 50},
		[3]interface{}{"b", 40, 90},
		[3]interface{}{"c", 80, 100},
		[3]interface{}{"far", 0, 10},
	)
	slices := Model(tr)
	if len(slices) == 0 {
		t.Fatal("no slices")
	}
	// The nearest-to-failure slice contains c and its overlap b.
	first := slices[0]
	if !contains(first.Threads, "c") || !contains(first.Threads, "b") {
		t.Errorf("first slice = %v, want {b, c}", first.Threads)
	}
	// Distances are non-decreasing.
	for i := 1; i < len(slices); i++ {
		if slices[i].Distance < slices[i-1].Distance {
			t.Errorf("slice %d closer than %d", i, i-1)
		}
	}
}

func TestModelSplitsLargeGroups(t *testing.T) {
	tr := trace(100, "e",
		[3]interface{}{"a", 0, 100},
		[3]interface{}{"b", 0, 100},
		[3]interface{}{"c", 0, 100},
		[3]interface{}{"d", 0, 100},
		[3]interface{}{"e", 0, 100},
	)
	for _, sl := range Model(tr) {
		if len(sl.Threads) > MaxSliceThreads {
			t.Errorf("slice too large: %v", sl.Threads)
		}
	}
}

func TestModelFDClosure(t *testing.T) {
	tr := trace(100, "write",
		[3]interface{}{"open", 0, 10},
		[3]interface{}{"write", 80, 100},
		[3]interface{}{"close", 20, 30},
	)
	tr.FDs = map[string]int{"open": 3, "write": 3, "close": 3}
	slices := Model(tr)
	// The write slice must pull in open and close of the same fd even
	// though their windows do not overlap.
	found := false
	for _, sl := range slices {
		if contains(sl.Threads, "write") && contains(sl.Threads, "open") && contains(sl.Threads, "close") {
			found = true
		}
	}
	if !found {
		t.Errorf("fd closure missing: %v", slices)
	}
}

func TestModelSkipsSpawnedThreads(t *testing.T) {
	tr := trace(50, "a", [3]interface{}{"a", 0, 50})
	tr.Events = append(tr.Events, Event{TS: 20, Kind: ThreadInvoke, Thread: "kworker:X", Source: "a"})
	tr.Events = append(tr.Events,
		Event{TS: 21, Kind: SyscallEnter, Thread: "kworker:X"},
		Event{TS: 30, Kind: SyscallExit, Thread: "kworker:X"})
	for _, sl := range Model(tr) {
		if contains(sl.Threads, "kworker:X") {
			t.Errorf("spawned thread in slice: %v", sl.Threads)
		}
	}
}

func TestFromRun(t *testing.T) {
	res := &sched.RunResult{
		Failure: &sanitizer.Failure{Kind: sanitizer.KindBugOn, Thread: "B"},
	}
	add := func(name string, spawned string) {
		res.Seq = append(res.Seq, sched.Exec{Step: len(res.Seq), Name: name, Spawned: spawned})
	}
	add("A", "")
	add("A", "kworker:S")
	add("B", "")
	add("A", "")
	add("B", "")
	tr := FromRun(res, map[string]int{"A": 4})
	var kinds []string
	for _, e := range tr.Events {
		kinds = append(kinds, e.Kind.String()+":"+e.Thread)
	}
	text := strings.Join(kinds, " ")
	for _, want := range []string{"sys_enter:A", "invoke:kworker:S", "sys_exit:A", "sys_enter:B", "sys_exit:B", "crash:B"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in %q", want, text)
		}
	}
	if !strings.Contains(tr.Format(), "crash") {
		t.Error("Format misses the crash")
	}
}

// TestModelProperties: for arbitrary window sets, every produced slice is
// within the size cap, mentions only known threads, and slice sets are
// deduplicated.
func TestModelProperties(t *testing.T) {
	f := func(spans []uint8) bool {
		if len(spans) == 0 {
			return true
		}
		if len(spans) > 8 {
			spans = spans[:8]
		}
		tr := &Trace{}
		names := map[string]bool{}
		for i, s := range spans {
			name := string(rune('a' + i))
			start := uint64(s % 50)
			end := start + uint64(s%20) + 1
			tr.Events = append(tr.Events,
				Event{TS: start, Kind: SyscallEnter, Thread: name},
				Event{TS: end, Kind: SyscallExit, Thread: name})
			names[name] = true
		}
		tr.Events = append(tr.Events, Event{TS: 100, Kind: CrashEvent, Thread: "a"})
		seen := map[string]bool{}
		for _, sl := range Model(tr) {
			if len(sl.Threads) == 0 || len(sl.Threads) > MaxSliceThreads {
				return false
			}
			for _, th := range sl.Threads {
				if !names[th] {
					return false
				}
			}
			key := strings.Join(sl.Threads, ",")
			if seen[key] {
				return false // duplicates
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

package ingest

import (
	"strings"
	"testing"

	"aitia/internal/core"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// kcsanSample is shaped like a real syzbot KCSAN report.
const kcsanSample = `BUG: KASAN: use-after-free in fanout_demux+0x2
==================================================================
BUG: KCSAN: data-race in fanout_add / fanout_unlink

write to 0x104 of 8 bytes by task setsockopt$1 on cpu 0:
 fanout_add+0x3/0x12
 packet_setsockopt+0x5/0x9
read to 0x104 of 8 bytes by task close$2 on cpu 1:
 fanout_unlink+0x1/0x6
Reported by Kernel Concurrency Sanitizer on:
CPU: 1 PID: 6541 Comm: close$2 Not tainted 6.6.0 #0
==================================================================`

func TestParseKCSANSample(t *testing.T) {
	r, err := Parse(kcsanSample)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != sanitizer.KindUseAfterFree {
		t.Errorf("kind = %v", r.Kind)
	}
	if r.Site.Fn != "fanout_demux" || r.Site.Off != 2 {
		t.Errorf("site = %+v", r.Site)
	}
	if r.RacePair != [2]string{"fanout_add", "fanout_unlink"} {
		t.Errorf("race pair = %v", r.RacePair)
	}
	if len(r.Accesses) != 2 {
		t.Fatalf("accesses = %d", len(r.Accesses))
	}
	w, rd := r.Accesses[0], r.Accesses[1]
	if !w.Write || w.Addr != 0x104 || w.Size != 8 || w.Task != "setsockopt$1" || w.CPU != 0 {
		t.Errorf("write access = %+v", w)
	}
	if len(w.Stack) != 2 || w.Stack[0] != (Frame{Fn: "fanout_add", Off: 3}) ||
		w.Stack[1] != (Frame{Fn: "packet_setsockopt", Off: 5}) {
		t.Errorf("write stack = %+v", w.Stack)
	}
	if rd.Write || rd.Task != "close$2" || len(rd.Stack) != 1 {
		t.Errorf("read access = %+v", rd)
	}
}

func TestParseTitleKinds(t *testing.T) {
	for _, p := range titlePatterns {
		title := p.prefix + "some_fn+0x4" + p.suffix
		kind, site := parseTitle(title)
		if kind != p.kind {
			t.Errorf("%q parsed as %v, want %v", title, kind, p.kind)
		}
		if site.Fn != "some_fn" || site.Off != 4 {
			t.Errorf("%q site = %+v", title, site)
		}
	}
	if kind, _ := parseTitle("something completely different"); kind != sanitizer.KindNone {
		t.Errorf("unknown title parsed as %v", kind)
	}
}

func TestParseLenient(t *testing.T) {
	for _, text := range []string{
		"", "\n\n", "====\n\n====",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted a title-less report", text)
		}
	}
	// Garbage and truncation must never panic and still yield a report.
	for _, text := range []string{
		"kernel BUG at !",
		"BUG: KASAN: use-after-free in f\nwrite to 0xzz of x bytes by task on cpu :",
		kcsanSample[:len(kcsanSample)/2],
		strings.ReplaceAll(kcsanSample, "0x104", "????"),
	} {
		if _, err := Parse(text); err != nil {
			t.Errorf("Parse(%.40q...) = %v", text, err)
		}
	}
}

// fanoutProg builds a small program matching kcsanSample's symbols.
func fanoutProg(t testing.TB) *kir.Program {
	if t != nil {
		t.Helper()
	}
	b := kir.NewBuilder()
	b.Var("po_list", 0)
	fa := b.Func("fanout_add")
	fa.Load(kir.R1, kir.G("po_list"))
	fa.Load(kir.R2, kir.G("po_list"))
	fa.Nop()
	fa.Store(kir.G("po_list"), kir.Imm(1)).L("FA3")
	fa.Ret()
	fu := b.Func("fanout_unlink")
	fu.Nop()
	fu.Load(kir.R2, kir.G("po_list")).L("FU1")
	fu.Ret()
	se := b.Func("packet_setsockopt")
	se.Nop()
	se.Nop()
	se.Nop()
	se.Nop()
	se.Nop()
	se.Call("fanout_add")
	se.Ret()
	b.Thread("setsockopt$1", "packet_setsockopt")
	b.Thread("close$2", "fanout_unlink")
	prog, err := b.Build()
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return prog
}

func TestResolveFull(t *testing.T) {
	prog := fanoutProg(t)
	r, err := Parse(kcsanSample)
	if err != nil {
		t.Fatal(err)
	}
	ps := Resolve(prog, r)
	// fanout_demux is not in the program: the failure site degrades,
	// everything else resolves.
	if want := []Reason{ReasonUnknownSite}; len(ps.Partial) != 1 || ps.Partial[0] != want[0] {
		t.Errorf("partial = %v, want %v", ps.Partial, want)
	}
	if ps.Site != kir.NoInstr {
		t.Errorf("site = %v", ps.Site)
	}
	if len(ps.Suspects) != 2 {
		t.Fatalf("suspects = %+v", ps.Suspects)
	}
	fa3, _ := prog.ByLabel("FA3")
	fu1, _ := prog.ByLabel("FU1")
	if ps.Suspects[0].Instr != fa3.ID || !ps.Suspects[0].Write || ps.Suspects[0].Thread != "setsockopt$1" {
		t.Errorf("suspect 0 = %+v, want instr %d", ps.Suspects[0], fa3.ID)
	}
	if ps.Suspects[1].Instr != fu1.ID || ps.Suspects[1].Write {
		t.Errorf("suspect 1 = %+v, want instr %d", ps.Suspects[1], fu1.ID)
	}
	if len(ps.Threads) != 2 {
		t.Errorf("threads = %v", ps.Threads)
	}
	if ps.Ambiguous() {
		t.Error("fully offset-resolved report marked ambiguous")
	}
	if cs := ps.Candidates(8); len(cs) != 1 {
		t.Errorf("candidates = %d, want 1", len(cs))
	}
}

func TestResolveUnderspecified(t *testing.T) {
	prog := fanoutProg(t)

	t.Run("no-accesses", func(t *testing.T) {
		r, err := Parse("BUG: KASAN: use-after-free in fanout_unlink+0x1")
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if !hasReason(ps, ReasonNoAccesses) {
			t.Errorf("partial = %v", ps.Partial)
		}
		fu1, _ := prog.ByLabel("FU1")
		if ps.Site != fu1.ID {
			t.Errorf("site = %v, want %v", ps.Site, fu1.ID)
		}
		if len(ps.Suspects) != 0 || ps.Threads != nil {
			t.Errorf("slice = %+v", ps)
		}
	})

	t.Run("single-access", func(t *testing.T) {
		text := "BUG: KASAN: use-after-free in fanout_unlink+0x1\n" +
			"read to 0x104 of 8 bytes by task close$2 on cpu 1:\n fanout_unlink+0x1/0x6\n"
		r, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if !hasReason(ps, ReasonSingleAccess) || len(ps.Suspects) != 1 {
			t.Errorf("slice = %+v", ps)
		}
	})

	t.Run("missing-stack", func(t *testing.T) {
		text := "BUG: KASAN: use-after-free in fanout_unlink+0x1\n" +
			"write to 0x104 of 8 bytes by task setsockopt$1 on cpu 0:\n"
		r, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if !hasReason(ps, ReasonMissingStack) || len(ps.Suspects) != 0 {
			t.Errorf("slice = %+v", ps)
		}
	})

	t.Run("unknown-symbol", func(t *testing.T) {
		text := "BUG: KASAN: use-after-free in fanout_unlink+0x1\n" +
			"write to 0x104 of 8 bytes by task setsockopt$1 on cpu 0:\n __alloc_skb+0x1f/0x40\n"
		r, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if !hasReason(ps, ReasonUnknownSymbol) || len(ps.Suspects) != 0 {
			t.Errorf("slice = %+v", ps)
		}
	})

	t.Run("ambiguous-site", func(t *testing.T) {
		// No offset on the inner frame: every load of fanout_add is a
		// candidate read.
		text := "BUG: KASAN: use-after-free in fanout_unlink+0x1\n" +
			"read to 0x104 of 8 bytes by task setsockopt$1 on cpu 0:\n fanout_add\n" +
			"read to 0x104 of 8 bytes by task close$2 on cpu 1:\n fanout_unlink\n"
		r, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if !hasReason(ps, ReasonAmbiguousSite) || !ps.Ambiguous() {
			t.Fatalf("slice = %+v", ps)
		}
		if len(ps.Suspects) != 2 {
			t.Fatalf("suspects = %+v", ps.Suspects)
		}
		cs := ps.Candidates(8)
		if len(cs) < 2 {
			t.Errorf("candidates = %d, want fan-out", len(cs))
		}
		for _, c := range cs {
			if c.Ambiguous() {
				t.Errorf("candidate still ambiguous: %+v", c.Suspects)
			}
		}
		// The cap must hold.
		if got := ps.Candidates(2); len(got) != 2 {
			t.Errorf("capped candidates = %d", len(got))
		}
	})

	t.Run("unknown-task", func(t *testing.T) {
		text := "BUG: KASAN: use-after-free in fanout_unlink+0x1\n" +
			"write to 0x104 of 8 bytes by task kworker:fanout_work on cpu 0:\n fanout_add+0x3/0x12\n"
		r, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if !hasReason(ps, ReasonUnknownTask) || ps.Threads != nil {
			t.Errorf("slice = %+v", ps)
		}
		// The suspect still seeds with the runtime worker name.
		if len(ps.Suspects) != 1 || ps.Suspects[0].Thread != "kworker:fanout_work" {
			t.Errorf("suspects = %+v", ps.Suspects)
		}
	})

	t.Run("unknown-kind", func(t *testing.T) {
		r, err := Parse("Oops: mystery failure in fanout_unlink")
		if err != nil {
			t.Fatal(err)
		}
		ps := Resolve(prog, r)
		if ps.Kind != sanitizer.KindNone || !hasReason(ps, ReasonUnknownKind) {
			t.Errorf("slice = %+v", ps)
		}
	})
}

func hasReason(ps *PartialSlice, r Reason) bool {
	for _, have := range ps.Partial {
		if have == r {
			return true
		}
	}
	return false
}

// TestSynthesizeRoundTrip: a scenario's reproduced failure renders as a
// report whose parse+resolve recovers the failure kind, the failing
// instruction and both racing accesses — the property the corpus report
// gate is built on.
func TestSynthesizeRoundTrip(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}

	text, err := Synthesize(prog, rep.Run, rep.Races)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Parse(text)
	if err != nil {
		t.Fatalf("parse synthesized report:\n%s\n%v", text, err)
	}
	if r.Kind != rep.Run.Failure.Kind {
		t.Errorf("kind = %v, want %v", r.Kind, rep.Run.Failure.Kind)
	}
	ps := Resolve(prog, r)
	if ps.Degraded() {
		t.Errorf("synthesized report degraded: %v\n%s", ps.Partial, text)
	}
	if ps.Site != rep.Run.Failure.Instr {
		t.Errorf("site = %v, want %v", ps.Site, rep.Run.Failure.Instr)
	}
	if len(ps.Suspects) != 2 {
		t.Fatalf("suspects = %+v\n%s", ps.Suspects, text)
	}
	// The suspects must be the synthesized race's two sites.
	var race *struct{ first, second kir.InstrID }
	for i := len(rep.Races) - 1; i >= 0; i-- {
		if !rep.Races[i].Phantom {
			race = &struct{ first, second kir.InstrID }{rep.Races[i].First.Instr, rep.Races[i].Second.Instr}
			break
		}
	}
	if race == nil {
		t.Fatal("no non-phantom race in reproduction")
	}
	if ps.Suspects[0].Instr != race.first || ps.Suspects[1].Instr != race.second {
		t.Errorf("suspects = %+v, want %v/%v", ps.Suspects, race.first, race.second)
	}
	if ps.Suspects[0].Addr == 0 || ps.Suspects[0].Addr != ps.Suspects[1].Addr {
		t.Errorf("suspect addrs = %#x/%#x", ps.Suspects[0].Addr, ps.Suspects[1].Addr)
	}
}

// TestSynthesizeSpawnedThread: a failure involving a background worker
// renders a stack for the spawned thread (entry via the spawning step)
// and its task name survives the round trip.
func TestSynthesizeSpawnedThread(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2019-6974")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	text, err := Synthesize(prog, rep.Run, rep.Races)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accesses) != 2 {
		t.Fatalf("accesses = %d:\n%s", len(r.Accesses), text)
	}
	for _, a := range r.Accesses {
		if len(a.Stack) == 0 {
			t.Errorf("access by %s has no stack:\n%s", a.Task, text)
		}
	}
}

// TestResolveSpawnedTask: a report naming a spawned worker task
// ("kworker:<site>" from queue_work, "rcu:<site>" from call_rcu)
// resolves it back to the declared threads that can reach the spawn
// site instead of degrading to unknown-task and widening the slice.
func TestResolveSpawnedTask(t *testing.T) {
	for _, name := range []string{"fig4a", "fig4b"} {
		t.Run(name, func(t *testing.T) {
			sc, _ := scenarios.ByName(name)
			prog := sc.MustProgram()
			m, err := kvm.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
			if err != nil {
				t.Fatal(err)
			}
			text, err := Synthesize(prog, rep.Run, rep.Races)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Parse(text)
			if err != nil {
				t.Fatal(err)
			}
			spawned := false
			for _, a := range r.Accesses {
				if strings.HasPrefix(a.Task, "kworker:") || strings.HasPrefix(a.Task, "rcu:") {
					spawned = true
				}
			}
			if !spawned {
				t.Fatalf("report names no spawned task:\n%s", text)
			}
			ps := Resolve(prog, r)
			if hasReason(ps, ReasonUnknownTask) {
				t.Fatalf("spawned task degraded to unknown-task: %v\n%s", ps.Partial, text)
			}
			if len(ps.Threads) == 0 {
				t.Fatal("no threads resolved")
			}
			declared := map[string]bool{}
			for _, td := range prog.Threads {
				declared[td.Name] = true
			}
			for _, th := range ps.Threads {
				if !declared[th] {
					t.Errorf("resolved thread %q is not declared", th)
				}
			}
		})
	}
}

func TestSynthesizeNonFailing(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	if _, err := Synthesize(prog, nil, nil); err == nil {
		t.Error("nil run accepted")
	}
	if _, err := Synthesize(prog, &sched.RunResult{}, nil); err == nil {
		t.Error("non-failing run accepted")
	}
}

func TestFingerprint(t *testing.T) {
	r1, err := Parse(kcsanSample)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Parse(kcsanSample + "\n\nextra trailing noise ignored by fingerprint? no — kept lines differ")
	if err != nil {
		t.Fatal(err)
	}
	_ = r2
	if Fingerprint(r1) != Fingerprint(r1) {
		t.Error("fingerprint unstable")
	}
	r3, err := Parse(strings.Replace(kcsanSample, "0x104", "0x108", 1))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(r1) == Fingerprint(r3) {
		t.Error("different reports share a fingerprint")
	}
}

package ingest

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// Reason is a machine-readable degradation marker: which part of the
// report could not be resolved, and therefore which constraint the
// diagnosis had to widen.
type Reason string

const (
	// ReasonUnknownKind: the title matched no known sanitizer header;
	// any non-watchdog failure at the site will be accepted.
	ReasonUnknownKind Reason = "unknown-kind"
	// ReasonUnknownSite: the failing location could not be resolved to
	// an instruction; acceptance is widened to any location.
	ReasonUnknownSite Reason = "unresolved-failure-site"
	// ReasonNoAccesses: the report carried no parsable access blocks;
	// the search runs without suspect seeding.
	ReasonNoAccesses Reason = "no-access-blocks"
	// ReasonSingleAccess: only one racing access was reported (the other
	// was lost or inlined away); the search seeds a single suspect.
	ReasonSingleAccess Reason = "single-access"
	// ReasonMissingStack: an access block had no call stack; its suspect
	// could not be resolved.
	ReasonMissingStack Reason = "missing-stack"
	// ReasonUnknownSymbol: a stack frame names a function absent from
	// the program's symbol table.
	ReasonUnknownSymbol Reason = "unknown-symbol"
	// ReasonAmbiguousSite: a frame carried no (or an invalid) offset and
	// maps to several plausible instructions; Candidates fans out over
	// them.
	ReasonAmbiguousSite Reason = "ambiguous-site"
	// ReasonUnknownTask: a reported task matches no declared thread; the
	// slice widens to every declared thread.
	ReasonUnknownTask Reason = "unknown-task"
)

// Suspect is one racing access resolved against the program.
type Suspect struct {
	// Thread is the reported task name, kept verbatim: runtime thread
	// names (including spawned kworker/rcu names) are what access
	// seeding keys on.
	Thread string
	// Instr is the best-ranked instruction for the access.
	Instr kir.InstrID
	// Alternates are the other plausible instructions when the report's
	// frame was ambiguous, in deterministic (program) order.
	Alternates []kir.InstrID
	Addr       uint64
	Write      bool
	Size       int
}

// PartialSlice is what a report resolves to: the constraints for a
// guided search, plus the reasons any of them are missing. The name is
// deliberate — unlike a history.Slice it is allowed to be underspecified,
// and every hole is recorded in Partial rather than guessed silently.
type PartialSlice struct {
	// Kind is the failure to accept (KindNone widens to any).
	Kind sanitizer.Kind
	// Site is the instruction the failure must manifest at (NoInstr
	// widens to any location).
	Site kir.InstrID
	// Threads are the declared threads implicated by the report's tasks.
	// Nil means the report's tasks could not be matched and the whole
	// declared set must be searched.
	Threads []string
	// Suspects are the resolved racing accesses (at most two).
	Suspects []Suspect
	// Partial lists what could not be resolved.
	Partial []Reason
}

// Degraded reports whether any part of the report failed to resolve.
func (ps *PartialSlice) Degraded() bool { return len(ps.Partial) > 0 }

// Ambiguous reports whether any suspect maps to several instructions.
func (ps *PartialSlice) Ambiguous() bool {
	for _, s := range ps.Suspects {
		if len(s.Alternates) > 0 {
			return true
		}
	}
	return false
}

// Resolve maps a parsed report onto a program: the failing site and each
// access's innermost frame are looked up in the symbol table, tasks are
// matched against declared threads, and every hole degrades to a wider
// constraint recorded in Partial. It never fails: the zero-information
// report resolves to an unconstrained slice.
func Resolve(prog *kir.Program, r *Report) *PartialSlice {
	ps := &PartialSlice{Kind: r.Kind, Site: kir.NoInstr}
	mark := func(reason Reason) {
		for _, have := range ps.Partial {
			if have == reason {
				return
			}
		}
		ps.Partial = append(ps.Partial, reason)
	}

	if r.Kind == sanitizer.KindNone {
		mark(ReasonUnknownKind)
	}

	if in, ok := resolveFrame(prog, r.Site); ok {
		ps.Site = in
	} else {
		mark(ReasonUnknownSite)
	}

	switch len(r.Accesses) {
	case 0:
		mark(ReasonNoAccesses)
	case 1:
		mark(ReasonSingleAccess)
	}
	tasksResolved := true
	var threads []string
	for _, a := range r.Accesses {
		if len(a.Stack) == 0 {
			mark(ReasonMissingStack)
		} else {
			s := Suspect{Thread: a.Task, Addr: a.Addr, Write: a.Write, Size: a.Size}
			inner := a.Stack[0]
			fn := prog.Funcs[inner.Fn]
			switch {
			case fn == nil:
				mark(ReasonUnknownSymbol)
			case inner.Off >= 0 && inner.Off < int64(len(fn.Instrs)) &&
				matchesAccess(fn.Instrs[inner.Off], a.Write):
				s.Instr = fn.Instrs[inner.Off].ID
				ps.Suspects = append(ps.Suspects, s)
			default:
				// No usable offset: every instruction of the function
				// performing this kind of access is a candidate.
				cands := accessCandidates(fn, a.Write)
				if len(cands) == 0 {
					mark(ReasonUnknownSymbol)
					break
				}
				mark(ReasonAmbiguousSite)
				s.Instr = cands[0]
				s.Alternates = cands[1:]
				ps.Suspects = append(ps.Suspects, s)
			}
		}
		switch sp := taskThreads(prog, a.Task); {
		case len(sp) > 0:
			threads = append(threads, sp...)
		default:
			tasksResolved = false
		}
	}
	if len(r.Accesses) > 0 && tasksResolved {
		seen := map[string]bool{}
		for _, name := range threads {
			if !seen[name] {
				seen[name] = true
				ps.Threads = append(ps.Threads, name)
			}
		}
		sort.Strings(ps.Threads)
	} else if len(r.Accesses) > 0 {
		mark(ReasonUnknownTask)
	}
	return ps
}

// resolveFrame maps a report frame to the instruction it names.
func resolveFrame(prog *kir.Program, f Frame) (kir.InstrID, bool) {
	fn := prog.Funcs[f.Fn]
	if fn == nil || f.Off < 0 || f.Off >= int64(len(fn.Instrs)) {
		return kir.NoInstr, false
	}
	return fn.Instrs[f.Off].ID, true
}

// matchesAccess reports whether the instruction can perform the reported
// access type.
func matchesAccess(in kir.Instr, write bool) bool {
	if write {
		return in.Op.WritesMemory()
	}
	return in.Op.ReadsMemory()
}

// accessCandidates lists the instructions of fn that can perform the
// reported access type, in program order; when none match exactly, any
// memory access qualifies (reports sometimes misclassify marked
// accesses).
func accessCandidates(fn *kir.Func, write bool) []kir.InstrID {
	var exact, any []kir.InstrID
	for _, in := range fn.Instrs {
		if !in.Op.AccessesMemory() {
			continue
		}
		any = append(any, in.ID)
		if matchesAccess(in, write) {
			exact = append(exact, in.ID)
		}
	}
	if len(exact) > 0 {
		return exact
	}
	return any
}

// taskThreads maps a reported task name onto the declared threads it
// implicates. A declared thread names itself. A spawned worker name
// ("kworker:<site>", "rcu:<site>") names the declared threads that can
// reach its spawn site — the worker only exists because one of them
// queued it, so those spawners must stay in the slice. Nil means the
// task resolved to nothing and the slice must widen to every thread.
func taskThreads(prog *kir.Program, task string) []string {
	for _, td := range prog.Threads {
		if td.Name == task {
			return []string{task}
		}
	}
	if site, ok := spawnSite(prog, task); ok {
		return spawners(prog, site)
	}
	return nil
}

// spawnSite resolves a runtime spawned-task name back to the spawn-site
// instruction that created it. The VM names workers
// "kworker:<site-name>" (queue_work) and "rcu:<site-name>" (call_rcu),
// with a "#n" suffix distinguishing re-spawns from the same site;
// <site-name> is the instruction's label, or "fn+idx" when unlabeled.
func spawnSite(prog *kir.Program, task string) (kir.InstrID, bool) {
	var wantOp kir.Op
	var name string
	switch {
	case strings.HasPrefix(task, "kworker:"):
		wantOp, name = kir.OpQueueWork, task[len("kworker:"):]
	case strings.HasPrefix(task, "rcu:"):
		wantOp, name = kir.OpCallRCU, task[len("rcu:"):]
	default:
		return kir.NoInstr, false
	}
	if i := strings.LastIndex(name, "#"); i >= 0 {
		name = name[:i]
	}
	if in, ok := prog.ByLabel(name); ok && in.Op == wantOp {
		return in.ID, true
	}
	fn, idxStr, ok := strings.Cut(name, "+")
	if !ok {
		return kir.NoInstr, false
	}
	idx, err := strconv.Atoi(idxStr)
	f := prog.Funcs[fn]
	if err != nil || f == nil || idx < 0 || idx >= len(f.Instrs) || f.Instrs[idx].Op != wantOp {
		return kir.NoInstr, false
	}
	return f.Instrs[idx].ID, true
}

// spawners lists the declared threads whose entry function can
// statically reach the function containing the spawn site (over the call
// graph, spawn edges included).
func spawners(prog *kir.Program, site kir.InstrID) []string {
	f, ok := prog.FuncOf(site)
	if !ok {
		return nil
	}
	var out []string
	for _, td := range prog.Threads {
		if reachesFunc(prog, td.Entry, f.Name) {
			out = append(out, td.Name)
		}
	}
	return out
}

// reachesFunc walks the static call graph (calls and spawns alike) from
// one function looking for another.
func reachesFunc(prog *kir.Program, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	work := []string{from}
	for len(work) > 0 {
		fn := prog.Funcs[work[len(work)-1]]
		work = work[:len(work)-1]
		if fn == nil {
			continue
		}
		for _, in := range fn.Instrs {
			if !in.Op.UsesFunc() || seen[in.Target] {
				continue
			}
			if in.Target == to {
				return true
			}
			seen[in.Target] = true
			work = append(work, in.Target)
		}
	}
	return false
}

// Candidates enumerates the concrete resolutions of an ambiguous slice:
// the cartesian product of each suspect's instruction candidates, in
// deterministic rank order (best-ranked first), capped at limit. An
// unambiguous slice yields itself. The first candidate is always the
// best-ranked resolution.
func (ps *PartialSlice) Candidates(limit int) []*PartialSlice {
	if limit <= 0 {
		limit = 1
	}
	out := []*PartialSlice{concrete(ps, nil)}
	// Odometer over the alternate choices, skipping the all-zero
	// combination already emitted.
	idx := make([]int, len(ps.Suspects))
	for len(out) < limit {
		i := len(idx) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] <= len(ps.Suspects[i].Alternates) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			break
		}
		out = append(out, concrete(ps, idx))
	}
	return out
}

// concrete builds one fully resolved variant: suspect i takes its main
// instruction when pick[i] is 0, otherwise Alternates[pick[i]-1].
func concrete(ps *PartialSlice, pick []int) *PartialSlice {
	c := &PartialSlice{
		Kind:    ps.Kind,
		Site:    ps.Site,
		Threads: ps.Threads,
		Partial: ps.Partial,
	}
	for i, s := range ps.Suspects {
		cs := Suspect{Thread: s.Thread, Instr: s.Instr, Addr: s.Addr, Write: s.Write, Size: s.Size}
		if pick != nil && pick[i] > 0 {
			cs.Instr = s.Alternates[pick[i]-1]
		}
		c.Suspects = append(c.Suspects, cs)
	}
	return c
}

// Fingerprint is a stable digest of a report's diagnostic content (kind,
// site, access pair) — the cache identity of a report-driven job.
// Formatting noise (separators, footer lines, whitespace) does not
// change it.
func Fingerprint(r *Report) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "k=%d|s=%s|", r.Kind, r.Site)
	fmt.Fprintf(h, "p=%s/%s|", r.RacePair[0], r.RacePair[1])
	for _, a := range r.Accesses {
		fmt.Fprintf(h, "a=%t:%x:%d:%s|", a.Write, a.Addr, a.Size, a.Task)
		for _, f := range a.Stack {
			fmt.Fprintf(h, "f=%s|", f)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

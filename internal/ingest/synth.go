package ingest

import (
	"fmt"
	"strings"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// separator mirrors the sanitizer framing lines of real reports.
const separator = "=================================================================="

// Synthesize renders a reproduced failing run as a KCSAN-style crash
// report: the sanitizer title for the failure, and a data-race section
// for the race nearest the failure with one access block per side —
// address, access type, task, and a static call path from the thread's
// entry to the access. The output parses back (Parse + Resolve) into the
// constraints that reproduce the same failure, which is what lets the
// scenario corpus double as a report workload.
func Synthesize(prog *kir.Program, run *sched.RunResult, races []sched.Race) (string, error) {
	if run == nil || run.Failure == nil {
		return "", fmt.Errorf("ingest: cannot synthesize a report from a non-failing run")
	}
	f := run.Failure

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title(prog, f), separator)

	// The race pair: the last race fully observed in the failing run
	// (phantom races have no second access to report a stack for —
	// exactly the accesses a real sanitizer cannot have seen either).
	var race *sched.Race
	for i := len(races) - 1; i >= 0; i-- {
		if !races[i].Phantom && races[i].SecondStep >= 0 {
			race = &races[i]
			break
		}
	}
	if race != nil {
		first, second := run.Seq[race.FirstStep], run.Seq[race.SecondStep]
		fmt.Fprintf(&b, "BUG: KCSAN: data-race in %s / %s\n\n",
			first.Instr.Fn, second.Instr.Fn)
		writeAccess(&b, prog, run, first, race.Addr)
		b.WriteString("\n")
		writeAccess(&b, prog, run, second, race.Addr)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Reported by Kernel Concurrency Sanitizer on:\n%s\n", separator)
	return b.String(), nil
}

// title renders the sanitizer header for a failure.
func title(prog *kir.Program, f *sanitizer.Failure) string {
	loc := "unknown"
	if in, ok := prog.Instr(f.Instr); ok {
		loc = fmt.Sprintf("%s+0x%x", in.Fn, in.Idx)
	}
	for _, p := range titlePatterns {
		if p.kind == f.Kind {
			return p.prefix + loc + p.suffix
		}
	}
	return fmt.Sprintf("BUG: %s in %s", f.Kind, loc)
}

// writeAccess renders one access block: the header line with access
// type, address, size and task, then the static call path from the
// thread's entry function to the access, innermost first.
func writeAccess(b *strings.Builder, prog *kir.Program, run *sched.RunResult, ex sched.Exec, addr uint64) {
	write := ex.Instr.Op.WritesMemory()
	for _, a := range ex.Accesses {
		if a.Addr == addr {
			write = a.Write
			break
		}
	}
	mode := "read"
	if write {
		mode = "write"
	}
	size := int(ex.Instr.Size)
	if size <= 0 {
		size = 8
	}
	fmt.Fprintf(b, "%s to 0x%x of %d bytes by task %s on cpu %d:\n",
		mode, addr, size, ex.Name, int(ex.Thread))
	for _, f := range stackFor(prog, run, ex) {
		fn := prog.Funcs[f.Fn]
		fmt.Fprintf(b, " %s+0x%x/0x%x\n", f.Fn, f.Off, len(fn.Instrs))
	}
}

// stackFor reconstructs a plausible call stack for the executed
// instruction: the shortest static call path from the thread's entry
// function to the access function. Inner frame first (the access itself);
// outer frames carry their call-site offsets, like a real unwinder.
func stackFor(prog *kir.Program, run *sched.RunResult, ex sched.Exec) []Frame {
	frames := []Frame{{Fn: ex.Instr.Fn, Off: int64(ex.Instr.Idx)}}
	entry := entryFn(prog, run, ex.Name)
	if entry == "" || entry == ex.Instr.Fn {
		return frames
	}
	path := callPath(prog, entry, ex.Instr.Fn)
	// path[i] calls path[i+1] at call-site callSites[i]; render outermost
	// last, each with its call-site offset.
	for i := len(path) - 2; i >= 0; i-- {
		frames = append(frames, Frame{Fn: path[i].fn, Off: int64(path[i].site)})
	}
	return frames
}

// entryFn finds the entry function of a thread: declared threads from
// the program's thread table, spawned threads from the spawning step in
// the run (queue_work/call_rcu record the spawned name).
func entryFn(prog *kir.Program, run *sched.RunResult, name string) string {
	for _, td := range prog.Threads {
		if td.Name == name {
			return td.Entry
		}
	}
	for _, ex := range run.Seq {
		if ex.Spawned == name {
			return ex.Instr.Target
		}
	}
	return ""
}

// callEdge is one hop of a static call path.
type callEdge struct {
	fn   string
	site int // call-site instruction index within fn
}

// callPath returns the shortest static call chain from entry to target
// (BFS over call/queue_work/call_rcu edges), or nil when none exists.
// The last element is the target itself (site -1).
func callPath(prog *kir.Program, entry, target string) []callEdge {
	type node struct {
		fn   string
		path []callEdge
	}
	queue := []node{{fn: entry}}
	seen := map[string]bool{entry: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.fn == target {
			return append(n.path, callEdge{fn: target, site: -1})
		}
		fn := prog.Funcs[n.fn]
		if fn == nil {
			continue
		}
		for idx, in := range fn.Instrs {
			if !in.Op.UsesFunc() || seen[in.Target] {
				continue
			}
			seen[in.Target] = true
			path := make([]callEdge, len(n.path), len(n.path)+1)
			copy(path, n.path)
			queue = append(queue, node{fn: in.Target, path: append(path, callEdge{fn: n.fn, site: idx})})
		}
	}
	return nil
}

// Package ingest turns KCSAN/KASAN-style textual crash reports into the
// constraints a report-driven diagnosis needs: the failure kind and
// failing location from the title line, and the racing access pair —
// address, access type, task and call stack — from the KCSAN data-race
// section. Resolve maps those against a program's symbol table into a
// PartialSlice (suspect instructions, thread skeletons, degradation
// reasons), and Synthesize renders a reproduced failing run back into the
// same dialect, so the scenario corpus doubles as a report workload.
//
// The parser is deliberately lenient: real reports arrive truncated,
// reformatted and with unresolvable symbols, so every missing piece
// degrades the result (recorded as a machine-readable Reason on the
// PartialSlice) instead of failing the ingestion. Parse only errors on
// input with no usable title at all, and never panics.
package ingest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"aitia/internal/sanitizer"
)

// Frame is one call-stack line of a report: a function name and the
// instruction offset within it (-1 when the report carried none).
type Frame struct {
	Fn  string
	Off int64
}

func (f Frame) String() string {
	if f.Off < 0 {
		return f.Fn
	}
	return fmt.Sprintf("%s+0x%x", f.Fn, f.Off)
}

// Access is one racing access block of the KCSAN section.
type Access struct {
	Write bool
	Addr  uint64 // 0 when unparsable
	Size  int    // bytes; 0 when unparsable
	Task  string // task (thread) name as reported
	CPU   int
	Stack []Frame // innermost first
}

// Report is the parsed form of a crash report.
type Report struct {
	// Title is the raw first non-empty line.
	Title string
	// Kind is the failure class recognized from the title (KindNone when
	// the title matches no known sanitizer header).
	Kind sanitizer.Kind
	// Site is the failing location named by the title (empty Fn when the
	// title carried none).
	Site Frame
	// RacePair are the two function names of the "BUG: KCSAN: data-race
	// in A / B" line, when present.
	RacePair [2]string
	// Accesses are the parsed access blocks, in report order (0, 1 or 2).
	Accesses []Access
}

// titlePatterns maps sanitizer kinds to their report headers. The %s is
// the failing location. Synthesize writes these; parseTitle matches them
// (and a few real-world variants) back.
var titlePatterns = []struct {
	kind   sanitizer.Kind
	prefix string
	suffix string
}{
	{sanitizer.KindUseAfterFree, "BUG: KASAN: use-after-free in ", ""},
	{sanitizer.KindOutOfBounds, "BUG: KASAN: slab-out-of-bounds in ", ""},
	{sanitizer.KindDoubleFree, "BUG: KASAN: double-free in ", ""},
	{sanitizer.KindBadFree, "BUG: KASAN: invalid-free in ", ""},
	{sanitizer.KindNullDeref, "BUG: unable to handle kernel NULL pointer dereference in ", ""},
	{sanitizer.KindGPF, "general protection fault in ", ""},
	{sanitizer.KindBugOn, "kernel BUG at ", "!"},
	{sanitizer.KindRefcount, "WARNING: refcount bug in ", ""},
	{sanitizer.KindMemoryLeak, "BUG: memory leak in ", ""},
	{sanitizer.KindBadUnlock, "WARNING: bad unlock balance detected! in ", ""},
	{sanitizer.KindDeadlock, "INFO: task hung in ", ""},
	{sanitizer.KindWatchdog, "watchdog: BUG: soft lockup in ", ""},
}

var (
	// e.g. "write to 0x104 of 8 bytes by task seccomp$1 on cpu 0:"
	accessRe = regexp.MustCompile(`^(write|read)(?: \(marked\))? to (0x[0-9a-fA-F]+|\?+) of (\d+) bytes? by (?:task|interrupt) (.+?)(?: on cpu (\d+))?:$`)
	// e.g. " fanout_add+0x3/0x12" or " fanout_add" (offset unknown)
	frameRe = regexp.MustCompile(`^\s+([A-Za-z_$][A-Za-z0-9_.$:#-]*)(?:\+0x([0-9a-fA-F]+))?(?:/0x[0-9a-fA-F]+)?\s*$`)
	// e.g. "BUG: KCSAN: data-race in fanout_add / fanout_unlink"
	kcsanRe = regexp.MustCompile(`^BUG: KCSAN: data-race in (\S+) / (\S+)`)
)

// Parse reads a crash report. It errors only when no title line exists;
// everything else degrades to an emptier Report.
func Parse(text string) (*Report, error) {
	lines := strings.Split(text, "\n")
	r := &Report{Kind: sanitizer.KindNone, Site: Frame{Off: -1}}

	i := 0
	for ; i < len(lines); i++ {
		l := strings.TrimRight(lines[i], " \t\r")
		if strings.TrimSpace(l) == "" || isSeparator(l) {
			continue
		}
		r.Title = strings.TrimSpace(l)
		break
	}
	if r.Title == "" {
		return nil, fmt.Errorf("ingest: no report title found")
	}
	r.Kind, r.Site = parseTitle(r.Title)

	var cur *Access
	for ; i < len(lines); i++ {
		l := strings.TrimRight(lines[i], " \t\r")
		if m := kcsanRe.FindStringSubmatch(strings.TrimSpace(l)); m != nil {
			r.RacePair = [2]string{m[1], m[2]}
			cur = nil
			continue
		}
		if m := accessRe.FindStringSubmatch(strings.TrimSpace(l)); m != nil {
			if len(r.Accesses) == 2 {
				cur = nil
				continue // extra blocks: keep the first pair
			}
			a := Access{Write: m[1] == "write", Task: m[4]}
			if v, err := strconv.ParseUint(strings.TrimPrefix(m[2], "0x"), 16, 64); err == nil {
				a.Addr = v
			}
			if v, err := strconv.Atoi(m[3]); err == nil {
				a.Size = v
			}
			if m[5] != "" {
				if v, err := strconv.Atoi(m[5]); err == nil {
					a.CPU = v
				}
			}
			r.Accesses = append(r.Accesses, a)
			cur = &r.Accesses[len(r.Accesses)-1]
			continue
		}
		if cur != nil && strings.HasPrefix(l, " ") {
			if strings.Contains(l, "Kernel Concurrency Sanitizer") {
				cur = nil
				continue
			}
			if m := frameRe.FindStringSubmatch(l); m != nil {
				f := Frame{Fn: m[1], Off: -1}
				if m[2] != "" {
					if v, err := strconv.ParseInt(m[2], 16, 64); err == nil {
						f.Off = v
					}
				}
				cur.Stack = append(cur.Stack, f)
				continue
			}
		}
		// A blank line, separator or any unindented line ends the
		// current access block.
		if strings.TrimSpace(l) == "" || !strings.HasPrefix(l, " ") {
			cur = nil
		}
	}
	return r, nil
}

// parseTitle recognizes the sanitizer header and extracts the failing
// location.
func parseTitle(title string) (sanitizer.Kind, Frame) {
	for _, p := range titlePatterns {
		if !strings.HasPrefix(title, p.prefix) {
			continue
		}
		loc := strings.TrimPrefix(title, p.prefix)
		loc = strings.TrimSuffix(loc, p.suffix)
		// Trailing context like "fn+0x3/0x12 [module]" or "fn!extra":
		// keep the first whitespace-separated token.
		if f := strings.Fields(loc); len(f) > 0 {
			loc = f[0]
		}
		return p.kind, parseLoc(loc)
	}
	return sanitizer.KindNone, Frame{Off: -1}
}

// parseLoc splits "fn+0x3/0x12" (or bare "fn") into a Frame.
func parseLoc(loc string) Frame {
	if i := strings.IndexByte(loc, '/'); i >= 0 {
		loc = loc[:i]
	}
	f := Frame{Fn: loc, Off: -1}
	if i := strings.LastIndex(loc, "+0x"); i >= 0 {
		if v, err := strconv.ParseInt(loc[i+3:], 16, 64); err == nil {
			f.Fn, f.Off = loc[:i], v
		}
	}
	return f
}

func isSeparator(l string) bool {
	t := strings.TrimSpace(l)
	return t != "" && strings.Trim(t, "=") == ""
}

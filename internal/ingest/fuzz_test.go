package ingest

import (
	"testing"
)

// FuzzParse drives the full ingestion path — Parse, Fingerprint, Resolve,
// Candidates — over arbitrary report text. The invariants are the
// package's contract: no panic on any input, a non-nil report whenever a
// title line exists, and resolution that always terminates with a bounded
// candidate fan-out. Seeds live in testdata/fuzz/FuzzParse; the CI quick
// job runs a short -fuzztime smoke on top of the committed corpus.
func FuzzParse(f *testing.F) {
	prog := fanoutProg(nil)
	f.Add(kcsanSample)
	f.Add("kernel BUG at fanout_add+0x3!\n====\nBUG: KCSAN: data-race in a / b\n")
	f.Add("BUG: memory leak in do_seccomp_install+0x0\n" +
		"write to 0x101 of 8 bytes by task seccomp$1 on cpu 0:\n do_seccomp_install+0x0/0x9\n")
	f.Add("INFO: task hung in lock_a\nread to ???? of 4 bytes by task t on cpu 9:\n lock_a\n")
	f.Fuzz(func(t *testing.T, text string) {
		r, err := Parse(text)
		if err != nil {
			return
		}
		if r.Title == "" {
			t.Fatal("Parse returned a report without a title")
		}
		if len(r.Accesses) > 2 {
			t.Fatalf("Parse kept %d access blocks, max is 2", len(r.Accesses))
		}
		if Fingerprint(r) != Fingerprint(r) {
			t.Fatal("Fingerprint not deterministic")
		}
		ps := Resolve(prog, r)
		for _, s := range ps.Suspects {
			if _, ok := prog.Instr(s.Instr); !ok {
				t.Fatalf("suspect resolved to invalid instruction %d", s.Instr)
			}
		}
		if cs := ps.Candidates(8); len(cs) == 0 || len(cs) > 8 {
			t.Fatalf("Candidates(8) = %d", len(cs))
		}
	})
}

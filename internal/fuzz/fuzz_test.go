package fuzz

import (
	"testing"

	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

func TestCampaignFindsKnownBug(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	fz, err := New(sc.MustProgram(), Options{Seed: 1, MaxRuns: 5000})
	if err != nil {
		t.Fatal(err)
	}
	finding, err := fz.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if finding == nil {
		t.Fatal("no finding")
	}
	if finding.Failure.Kind != sanitizer.KindNullDeref {
		t.Errorf("kind = %v", finding.Failure.Kind)
	}
	if finding.Trace == nil || finding.Trace.Crash == nil {
		t.Fatal("finding lacks a trace/crash")
	}
	if finding.Report == "" || finding.Runs <= 0 {
		t.Error("finding lacks report or run count")
	}
}

func TestCampaignIsDeterministicPerSeed(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	run := func() int {
		fz, err := New(sc.MustProgram(), Options{Seed: 7, MaxRuns: 5000})
		if err != nil {
			t.Fatal(err)
		}
		finding, err := fz.Campaign()
		if err != nil || finding == nil {
			t.Fatalf("finding = %v, %v", finding, err)
		}
		return finding.Runs
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different run counts: %d vs %d", a, b)
	}
}

func TestCollectRunsLabelsBoth(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	fz, err := New(sc.MustProgram(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := fz.CollectRuns(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 300 {
		t.Fatalf("runs = %d", len(runs))
	}
	var fail, pass int
	for _, r := range runs {
		if r.Failed() {
			fail++
		} else {
			pass++
		}
		if len(r.Seq) == 0 {
			t.Fatal("empty run")
		}
	}
	if fail == 0 || pass == 0 {
		t.Errorf("corpus not mixed: %d failing, %d passing", fail, pass)
	}
}

func TestStrategiesFindKnownBugDeterministically(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			run := func() int {
				fz, err := New(sc.MustProgram(), Options{Seed: 11, MaxRuns: 20000, Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				finding, err := fz.Campaign()
				if err != nil {
					t.Fatal(err)
				}
				if finding == nil {
					t.Fatalf("strategy %v found nothing", strat)
				}
				if finding.Failure.Kind != sanitizer.KindNullDeref {
					t.Errorf("kind = %v", finding.Failure.Kind)
				}
				return finding.Runs
			}
			if a, b := run(), run(); a != b {
				t.Errorf("same seed, different run counts under %v: %d vs %d", strat, a, b)
			}
		})
	}
}

func TestStrategyNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Strategies() {
		name := s.String()
		if seen[name] {
			t.Errorf("duplicate strategy name %q", name)
		}
		seen[name] = true
	}
	for _, want := range []string{"random", "stress", "priority", "inversion"} {
		if !seen[want] {
			t.Errorf("missing strategy %q", want)
		}
	}
}

func TestCampaignExhaustsOnSafeProgram(t *testing.T) {
	// fig7's program only fails under one specific order; with zero
	// preemption probability forced high... use a trivially safe program:
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	single, err := prog.Restrict([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := New(single, Options{Seed: 1, MaxRuns: 50})
	if err != nil {
		t.Fatal(err)
	}
	finding, err := fz.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if finding != nil {
		t.Errorf("single-threaded fig1 cannot fail, got %v", finding.Failure)
	}
}

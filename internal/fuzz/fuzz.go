// Package fuzz implements the bug-finding side of the pipeline: a
// Syzkaller/SKI-style randomized schedule fuzzer that executes a kernel
// program under random thread interleavings until a failure manifests,
// then emits exactly what AITIA consumes as input (§4.1): a timestamped
// execution trace (the ftrace analogue) and the failure information (the
// crash report).
//
// The fuzzer is deliberately unsophisticated — its role in the paper's
// evaluation is to *find* failures, not to explain them; AITIA's LIFS and
// Causality Analysis do the explaining.
package fuzz

import (
	"fmt"
	"math/rand"

	"aitia/internal/history"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// Strategy selects the scheduling policy a campaign fuzzes under. The
// SKI/eBPF-concurrency line of work (SNIPPETS §2) observes that different
// contention patterns surface qualitatively different bug classes, so the
// scenario factory cycles campaigns through all of them.
type Strategy uint8

const (
	// StrategyRandom is the default uniform policy: at every step, with
	// probability PreemptProb, control moves to a uniformly random
	// runnable thread.
	StrategyRandom Strategy = iota
	// StrategyStress maximizes contention: the preemption probability is
	// raised to stressPreemptProb so threads interleave at nearly every
	// shared access — the shortest route to atomicity violations.
	StrategyStress
	// StrategyPriority emulates priority-based contention: each thread
	// draws a random priority and the highest-priority runnable thread
	// always runs; with probability PreemptProb the priorities are
	// redrawn (a priority-change event). Long uninterrupted runs followed
	// by abrupt reordering expose order violations.
	StrategyPriority
	// StrategyInversion emulates priority inversion: the highest-priority
	// runnable thread runs except that, with probability PreemptProb, the
	// *lowest*-priority thread is scheduled instead — modelling a
	// low-priority lock holder starving the high-priority path, the
	// pattern that surfaces lock-ordering deadlocks.
	StrategyInversion
)

// stressPreemptProb is the per-step switch probability under
// StrategyStress.
const stressPreemptProb = 0.5

// String names the strategy for manifests and logs.
func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyStress:
		return "stress"
	case StrategyPriority:
		return "priority"
	case StrategyInversion:
		return "inversion"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Strategies lists every scheduling strategy in cycling order.
func Strategies() []Strategy {
	return []Strategy{StrategyRandom, StrategyStress, StrategyPriority, StrategyInversion}
}

// Options configure a fuzzing campaign.
type Options struct {
	// Seed makes the campaign reproducible.
	Seed int64
	// MaxRuns bounds the campaign (default DefaultMaxRuns).
	MaxRuns int
	// PreemptProb is the per-step probability of switching to a random
	// runnable thread (default 0.15). Under StrategyPriority and
	// StrategyInversion it is the probability of the strategy's
	// perturbation event instead.
	PreemptProb float64
	// Strategy selects the scheduling policy (default StrategyRandom).
	Strategy Strategy
	// StepBudget is the per-run watchdog limit.
	StepBudget int
	// LeakCheck enables the end-of-run memory-leak oracle.
	LeakCheck bool
	// FDs assigns file descriptors to syscall threads for the trace.
	FDs map[string]int
	// WantKind restricts Campaign to failures of this kind (KindNone
	// accepts any failure); WantInstr further restricts the failing
	// instruction. Non-matching failing runs are skipped, not returned —
	// used when comparing reproduction cost against LIFS for a specific
	// crash report.
	WantKind  sanitizer.Kind
	WantInstr kir.InstrID
}

// DefaultMaxRuns bounds campaigns when Options.MaxRuns is zero.
const DefaultMaxRuns = 10000

// Finding is one discovered failure with everything AITIA needs.
type Finding struct {
	Failure *sanitizer.Failure
	Trace   *history.Trace
	Report  string // rendered crash report
	Run     *sched.RunResult
	Runs    int   // runs executed until the failure surfaced
	Seed    int64 // seed that reproduces the campaign
}

// Fuzzer drives random-schedule campaigns over one program.
type Fuzzer struct {
	prog *kir.Program
	opts Options
	rng  *rand.Rand
}

// New creates a fuzzer for a finalized program.
func New(prog *kir.Program, opts Options) (*Fuzzer, error) {
	if !prog.Finalized() {
		return nil, fmt.Errorf("fuzz: program not finalized")
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	if opts.PreemptProb <= 0 || opts.PreemptProb >= 1 {
		opts.PreemptProb = 0.15
	}
	if opts.StepBudget <= 0 {
		opts.StepBudget = sched.DefaultStepBudget
	}
	return &Fuzzer{prog: prog, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}, nil
}

// Campaign runs random schedules until a failure is found or MaxRuns is
// exhausted (in which case it returns nil, nil).
func (f *Fuzzer) Campaign() (*Finding, error) {
	m, err := kvm.New(f.prog)
	if err != nil {
		return nil, err
	}
	init := m.Snapshot()
	for run := 1; run <= f.opts.MaxRuns; run++ {
		m.Restore(init)
		res, err := f.randomRun(m)
		if err != nil {
			return nil, err
		}
		if res.Failure != nil && !f.accepts(res.Failure) {
			continue
		}
		if res.Failure != nil {
			return &Finding{
				Failure: res.Failure,
				Trace:   history.FromRun(res, f.opts.FDs),
				Report:  res.Failure.Report(f.prog),
				Run:     res,
				Runs:    run,
				Seed:    f.opts.Seed,
			}, nil
		}
	}
	return nil, nil
}

// CollectRuns executes n random-schedule runs and returns all of them,
// failing and passing alike — the execution corpus that statistical
// baselines (cooperative bug localization, MUVI) learn from.
func (f *Fuzzer) CollectRuns(n int) ([]*sched.RunResult, error) {
	m, err := kvm.New(f.prog)
	if err != nil {
		return nil, err
	}
	init := m.Snapshot()
	out := make([]*sched.RunResult, 0, n)
	for i := 0; i < n; i++ {
		m.Restore(init)
		res, err := f.randomRun(m)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// accepts mirrors LIFS's crash-report matching.
func (f *Fuzzer) accepts(fail *sanitizer.Failure) bool {
	if f.opts.WantInstr != kir.NoInstr && f.opts.WantInstr != 0 && fail.Instr != f.opts.WantInstr {
		return false
	}
	return f.opts.WantKind == sanitizer.KindNone || fail.Kind == f.opts.WantKind
}

// randomRun executes one run under the campaign's scheduling strategy
// (StrategyRandom: at every step, with probability PreemptProb, control
// moves to a uniformly random runnable thread).
func (f *Fuzzer) randomRun(m *kvm.Machine) (*sched.RunResult, error) {
	res := &sched.RunResult{Threads: make(map[string]kvm.ThreadState)}
	cur := kvm.NoThread
	// Per-run thread priorities for the priority strategies, assigned
	// lazily in deterministic (runnable-slice) order.
	var prio map[kvm.ThreadID]int
	prioOf := func(id kvm.ThreadID) int {
		p, ok := prio[id]
		if !ok {
			p = f.rng.Intn(1 << 20)
			prio[id] = p
		}
		return p
	}
	if f.opts.Strategy == StrategyPriority || f.opts.Strategy == StrategyInversion {
		prio = make(map[kvm.ThreadID]int)
	}
	for steps := 0; ; steps++ {
		if m.Failure() != nil {
			break
		}
		if m.AllDone() {
			if f.opts.LeakCheck {
				m.CheckLeaks()
			}
			break
		}
		runnable := m.Runnable()
		if len(runnable) == 0 {
			// Deadlock: surface it like the enforcement engine would.
			m.InjectFailure(&sanitizer.Failure{
				Kind: sanitizer.KindDeadlock, Instr: kir.NoInstr,
				Msg: "no runnable thread under fuzzed schedule",
			})
			break
		}
		if steps > f.opts.StepBudget {
			t := m.Thread(cur)
			name := ""
			if t != nil {
				name = t.Name
			}
			m.InjectFailure(&sanitizer.Failure{
				Kind: sanitizer.KindWatchdog, Thread: name, Instr: kir.NoInstr,
				Msg: "step budget exceeded under fuzzed schedule",
			})
			break
		}

		switch f.opts.Strategy {
		case StrategyPriority:
			if f.rng.Float64() < f.opts.PreemptProb {
				prio = make(map[kvm.ThreadID]int) // priority-change event
			}
			cur = pickByPrio(runnable, prioOf, true)
		case StrategyInversion:
			cur = pickByPrio(runnable, prioOf, f.rng.Float64() >= f.opts.PreemptProb)
		default:
			pp := f.opts.PreemptProb
			if f.opts.Strategy == StrategyStress && pp < stressPreemptProb {
				pp = stressPreemptProb
			}
			if !contains(runnable, cur) || f.rng.Float64() < pp {
				cur = runnable[f.rng.Intn(len(runnable))]
			}
		}
		ev, err := m.Step(cur)
		if err != nil {
			return nil, err
		}
		if !ev.Executed {
			// Blocked: try someone else next iteration.
			cur = kvm.NoThread
			continue
		}
		t := m.Thread(cur)
		exec := sched.Exec{Step: len(res.Seq), Thread: cur, Name: t.Name, Instr: ev.Instr}
		for _, a := range ev.Accesses {
			exec.Accesses = append(exec.Accesses, sched.AccessRec{Addr: a.Addr, Write: a.Write})
		}
		if len(t.Locks) > 0 {
			exec.Lockset = append([]uint64(nil), t.Locks...)
		}
		if ev.Spawned != kvm.NoThread {
			exec.Spawned = m.Thread(ev.Spawned).Name
		}
		res.Seq = append(res.Seq, exec)
	}
	res.Failure = m.Failure()
	for i := 0; i < m.NumThreads(); i++ {
		t := m.Thread(kvm.ThreadID(i))
		res.Threads[t.Name] = t.State
	}
	return res, nil
}

// pickByPrio returns the highest- (or lowest-) priority runnable thread;
// ties break to the earliest thread in the runnable slice, so the pick is
// deterministic for a given rng stream.
func pickByPrio(runnable []kvm.ThreadID, prioOf func(kvm.ThreadID) int, highest bool) kvm.ThreadID {
	best := runnable[0]
	bp := prioOf(best)
	for _, id := range runnable[1:] {
		p := prioOf(id)
		if (highest && p > bp) || (!highest && p < bp) {
			best, bp = id, p
		}
	}
	return best
}

func contains(ids []kvm.ThreadID, id kvm.ThreadID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Package muvi reimplements the access-correlation analysis of MUVI (Lu
// et al., SOSP'07) as the paper's comparison baseline for multi-variable
// races. MUVI's key assumption (§2.2): semantically correlated variables
// are accessed *together* most of the time, so correlations can be mined
// statistically and a multi-variable bug is reachable only if its variable
// pair is mined as correlated.
//
// The paper's counterexample class — loosely correlated objects, such as
// CVE-2019-6974's VFS file descriptor vs. KVM device object — defeats the
// assumption: most executions touch one of the two variables without the
// other, the mined confidence stays below threshold, and the pair never
// becomes a candidate.
package muvi

import (
	"fmt"
	"sort"

	"aitia/internal/mem"
	"aitia/internal/sched"
)

// canonical folds all heap addresses into one bucket: MUVI reasons about
// *variables* (objects), not words, and dynamic allocation order varies
// across executions, so per-word heap addresses are not stable mining
// keys. Globals keep their identities.
func canonical(addr uint64) uint64 {
	if addr >= mem.HeapBase {
		return mem.HeapBase
	}
	return addr
}

// Correlation is a mined variable pair with its bidirectional confidence.
type Correlation struct {
	X, Y uint64 // addresses, X < Y
	// ConfXY is P(Y accessed | X accessed) over access units; ConfYX the
	// reverse. MUVI requires both to be high ("if one of these two is
	// accessed, the other should be accessed with a high probability").
	ConfXY, ConfYX float64
	// Units is the number of access units supporting the pair.
	Units int
}

// Confidence returns the pair's effective (minimum-direction) confidence.
func (c Correlation) Confidence() float64 {
	if c.ConfXY < c.ConfYX {
		return c.ConfXY
	}
	return c.ConfYX
}

// DefaultMinConfidence matches MUVI's high-correlation requirement.
const DefaultMinConfidence = 0.8

// Options configure the mining.
type Options struct {
	// MinConfidence is the correlation threshold (DefaultMinConfidence
	// when zero).
	MinConfidence float64
	// MinSupport is the minimum number of units accessing a variable for
	// it to participate (default 2).
	MinSupport int
}

// Mine extracts correlated variable pairs from an execution corpus. The
// access unit is (run, thread): the set of shared addresses one thread
// touched in one execution — the dynamic analogue of MUVI's per-function
// access sets.
func Mine(runs []*sched.RunResult, opts Options) []Correlation {
	if opts.MinConfidence <= 0 {
		opts.MinConfidence = DefaultMinConfidence
	}
	if opts.MinSupport <= 0 {
		opts.MinSupport = 2
	}

	// Collect access units.
	var units []map[uint64]bool
	for _, r := range runs {
		byThread := make(map[string]map[uint64]bool)
		for _, e := range r.Seq {
			for _, a := range e.Accesses {
				set := byThread[e.Name]
				if set == nil {
					set = make(map[uint64]bool)
					byThread[e.Name] = set
				}
				set[canonical(a.Addr)] = true
			}
		}
		for _, set := range byThread {
			if len(set) > 0 {
				units = append(units, set)
			}
		}
	}

	count := make(map[uint64]int)
	pair := make(map[[2]uint64]int)
	for _, u := range units {
		addrs := make([]uint64, 0, len(u))
		for a := range u {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for i, x := range addrs {
			count[x]++
			for _, y := range addrs[i+1:] {
				pair[[2]uint64{x, y}]++
			}
		}
	}

	var out []Correlation
	for k, n := range pair {
		x, y := k[0], k[1]
		if count[x] < opts.MinSupport || count[y] < opts.MinSupport {
			continue
		}
		c := Correlation{
			X: x, Y: y,
			ConfXY: float64(n) / float64(count[x]),
			ConfYX: float64(n) / float64(count[y]),
			Units:  n,
		}
		if c.Confidence() >= opts.MinConfidence {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence() != out[j].Confidence() {
			return out[i].Confidence() > out[j].Confidence()
		}
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// Correlated reports whether the two addresses form a mined pair.
func Correlated(cors []Correlation, a, b uint64) bool {
	if a > b {
		a, b = b, a
	}
	for _, c := range cors {
		if c.X == a && c.Y == b {
			return true
		}
	}
	return false
}

// CanExplain reports whether MUVI's approach reaches the bug whose
// causality chain is given: the chain must involve at least two distinct
// variables (MUVI targets multi-variable bugs only) and every pair of its
// racing variables must be mined as correlated.
func CanExplain(cors []Correlation, chain []sched.Race) (bool, string) {
	vars := make(map[uint64]bool)
	for _, r := range chain {
		vars[canonical(r.Addr)] = true
	}
	if len(vars) < 2 {
		return false, "single-variable failure: outside MUVI's multi-variable scope"
	}
	addrs := make([]uint64, 0, len(vars))
	for a := range vars {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for i, x := range addrs {
		for _, y := range addrs[i+1:] {
			if !Correlated(cors, x, y) {
				return false, fmt.Sprintf("variables %#x and %#x are loosely correlated (below the mining threshold)", x, y)
			}
		}
	}
	return true, "all racing variable pairs are strongly correlated"
}

package muvi

import (
	"testing"

	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

func chainOf(t *testing.T, name string) ([]sched.Race, []*sched.RunResult) {
	t.Helper()
	sc, _ := scenarios.ByName(name)
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	corpusProg, err := sc.CorpusProgram()
	if err != nil {
		t.Fatal(err)
	}
	fz, err := fuzz.New(corpusProg, fuzz.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := fz.CollectRuns(400)
	if err != nil {
		t.Fatal(err)
	}
	return d.Chain.Races(), runs
}

// TestTightPairIsMined: the L2TP session bug's variable pair is tightly
// correlated (every session operation touches both), so MUVI's mining
// reaches it.
func TestTightPairIsMined(t *testing.T) {
	chain, runs := chainOf(t, "syz03-l2tp-uaf")
	cors := Mine(runs, Options{})
	ok, why := CanExplain(cors, chain)
	if !ok {
		t.Errorf("tight pair not reached: %s", why)
	}
}

// TestLoosePairIsMissed: the KVM irqfd bug's pair is loosely correlated
// (fd-table operations do not touch the device object), defeating MUVI's
// assumption — the §2.2 argument.
func TestLoosePairIsMissed(t *testing.T) {
	chain, runs := chainOf(t, "syz04-kvm-irqfd")
	cors := Mine(runs, Options{})
	ok, why := CanExplain(cors, chain)
	if ok {
		t.Errorf("loose pair should be below threshold, got: %s", why)
	}
}

// TestSingleVariableIsOutOfScope: MUVI targets multi-variable bugs only.
func TestSingleVariableIsOutOfScope(t *testing.T) {
	chain, runs := chainOf(t, "syz05-rxrpc-local")
	cors := Mine(runs, Options{})
	if ok, why := CanExplain(cors, chain); ok {
		t.Errorf("single-variable bug should be out of scope: %s", why)
	}
}

func TestMineConfidenceBounds(t *testing.T) {
	_, runs := chainOf(t, "syz03-l2tp-uaf")
	for _, c := range Mine(runs, Options{}) {
		if c.Confidence() < DefaultMinConfidence || c.ConfXY > 1 || c.ConfYX > 1 {
			t.Errorf("bad confidence: %+v", c)
		}
		if c.X >= c.Y {
			t.Errorf("pair not ordered: %+v", c)
		}
	}
}

func TestCorrelated(t *testing.T) {
	cors := []Correlation{{X: 1, Y: 2}}
	if !Correlated(cors, 2, 1) || !Correlated(cors, 1, 2) {
		t.Error("Correlated should be symmetric")
	}
	if Correlated(cors, 1, 3) {
		t.Error("unmined pair reported")
	}
}

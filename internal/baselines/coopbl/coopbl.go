// Package coopbl reimplements the decision procedure of cooperative bug
// localization systems (Snorlax SOSP'17, Gist SOSP'15, CCI OOPSLA'10) as
// the paper's comparison baseline: a set of *predefined single-variable
// interleaving patterns* — order violations and atomicity violations — is
// extracted from many labeled executions, and the pattern with the
// strongest statistical correlation to the failure is reported as the
// root cause.
//
// The evaluation uses it to demonstrate the paper's pattern-agnostic
// argument (§2.2, §5.3): bugs whose root cause is a multi-variable race
// or a race-steered control-flow chain fall outside the pattern
// vocabulary, so the top-ranked pattern covers at most one link of the
// causality chain.
package coopbl

import (
	"fmt"
	"sort"

	"aitia/internal/kir"
	"aitia/internal/sched"
)

// PatternKind is the predefined interleaving-pattern vocabulary.
type PatternKind uint8

const (
	// OrderViolation: remote access B executes before access A although
	// the failure-free executions order A before B (single variable).
	OrderViolation PatternKind = iota
	// AtomicityViolation: a remote conflicting access R interleaves
	// between two same-thread accesses L1, L2 to one variable.
	AtomicityViolation
)

// String returns the pattern-kind name.
func (k PatternKind) String() string {
	switch k {
	case OrderViolation:
		return "order violation"
	case AtomicityViolation:
		return "atomicity violation"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(k))
	}
}

// Pattern is one concrete single-variable interleaving pattern.
type Pattern struct {
	Kind PatternKind
	Addr uint64
	// OrderViolation: First executes before Second.
	// AtomicityViolation: First/Second are the local pair, Remote is the
	// interleaving access.
	First  sched.Site
	Second sched.Site
	Remote sched.Site
}

// Format renders the pattern.
func (p Pattern) Format(prog *kir.Program) string {
	switch p.Kind {
	case OrderViolation:
		return fmt.Sprintf("order violation: %s => %s (addr %#x)",
			prog.InstrName(p.First.Instr), prog.InstrName(p.Second.Instr), p.Addr)
	default:
		return fmt.Sprintf("atomicity violation: %s interleaves %s..%s (addr %#x)",
			prog.InstrName(p.Remote.Instr), prog.InstrName(p.First.Instr),
			prog.InstrName(p.Second.Instr), p.Addr)
	}
}

// Ranked is a pattern with its statistical correlation to the failure.
type Ranked struct {
	Pattern Pattern
	// Score is P(pattern | failing) - P(pattern | passing): the standard
	// cooperative-debugging importance metric.
	Score    float64
	FailRuns int
	PassRuns int
}

// Analyze extracts patterns from a labeled corpus and ranks them by
// correlation with the failure. Runs must contain at least one failing
// and one passing execution.
func Analyze(runs []*sched.RunResult) ([]Ranked, error) {
	var nFail, nPass int
	failOcc := make(map[Pattern]int)
	passOcc := make(map[Pattern]int)
	for _, r := range runs {
		pats := extract(r)
		if r.Failed() {
			nFail++
			for p := range pats {
				failOcc[p]++
			}
		} else {
			nPass++
			for p := range pats {
				passOcc[p]++
			}
		}
	}
	if nFail == 0 || nPass == 0 {
		return nil, fmt.Errorf("coopbl: corpus needs failing and passing runs (have %d/%d)", nFail, nPass)
	}
	seen := make(map[Pattern]bool)
	var out []Ranked
	for p, c := range failOcc {
		seen[p] = true
		out = append(out, Ranked{
			Pattern:  p,
			Score:    float64(c)/float64(nFail) - float64(passOcc[p])/float64(nPass),
			FailRuns: c,
			PassRuns: passOcc[p],
		})
	}
	for p, c := range passOcc {
		if !seen[p] {
			out = append(out, Ranked{Pattern: p, Score: -float64(c) / float64(nPass), PassRuns: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return less(out[i].Pattern, out[j].Pattern)
	})
	return out, nil
}

func less(a, b Pattern) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	if a.First != b.First {
		return a.First.Thread < b.First.Thread || (a.First.Thread == b.First.Thread && a.First.Instr < b.First.Instr)
	}
	return a.Second.Instr < b.Second.Instr
}

// extract collects the pattern occurrences of one run.
func extract(res *sched.RunResult) map[Pattern]bool {
	type acc struct {
		site  sched.Site
		write bool
	}
	byAddr := make(map[uint64][]acc)
	for _, e := range res.Seq {
		for _, a := range e.Accesses {
			byAddr[a.Addr] = append(byAddr[a.Addr], acc{site: e.Site(), write: a.Write})
		}
	}
	out := make(map[Pattern]bool)
	for addr, list := range byAddr {
		for i := 0; i < len(list); i++ {
			// Order violations: the observed order of each cross-thread
			// conflicting pair.
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.site.Thread == b.site.Thread || (!a.write && !b.write) {
					continue
				}
				out[Pattern{Kind: OrderViolation, Addr: addr, First: a.site, Second: b.site}] = true
				break
			}
			// Atomicity violations: remote conflicting access between two
			// consecutive local accesses.
			if i+2 < len(list) {
				l1, r, l2 := list[i], list[i+1], list[i+2]
				if l1.site.Thread == l2.site.Thread && r.site.Thread != l1.site.Thread &&
					(r.write || l1.write || l2.write) {
					out[Pattern{Kind: AtomicityViolation, Addr: addr, First: l1.site, Second: l2.site, Remote: r.site}] = true
				}
			}
		}
	}
	return out
}

// MatchesRace reports whether the pattern corresponds to the given data
// race (same variable and the pattern's interleaving includes the race's
// site pair in either role).
func (p Pattern) MatchesRace(r sched.Race) bool {
	if p.Addr != r.Addr {
		return false
	}
	pair := func(a, b sched.Site) bool {
		return (a == r.First && b == r.Second) || (a == r.Second && b == r.First)
	}
	switch p.Kind {
	case OrderViolation:
		return pair(p.First, p.Second)
	default:
		return pair(p.First, p.Remote) || pair(p.Remote, p.Second)
	}
}

// Covers reports how many of the chain's races the top-ranked pattern
// explains — the comprehensiveness comparison of §5.3. A diagnosis that
// covers fewer than all chain races is partial; cooperative bug
// localization reports exactly one pattern, so any multi-race chain is at
// best partially covered.
func Covers(top Ranked, chain []sched.Race) int {
	n := 0
	for _, r := range chain {
		if top.Pattern.MatchesRace(r) {
			n++
		}
	}
	return n
}

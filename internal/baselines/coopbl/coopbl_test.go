package coopbl

import (
	"testing"

	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

func site(thread string, id kir.InstrID) sched.Site {
	return sched.Site{Thread: thread, Instr: id}
}

// TestSingleVariableBugIsFound: on the single-race RxRPC bug (#5),
// cooperative bug localization's top pattern should cover the chain — the
// class of bugs the technique handles.
func TestSingleVariableBugIsFound(t *testing.T) {
	sc, _ := scenarios.ByName("syz05-rxrpc-local")
	prog := sc.MustProgram()
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := fz.CollectRuns(400)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Analyze(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no patterns")
	}
	if ranked[0].Score <= 0 {
		t.Fatalf("top score = %f", ranked[0].Score)
	}

	m, _ := kvm.New(prog)
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chain := d.Chain.Races()
	if got := Covers(ranked[0], chain); got != len(chain) {
		t.Errorf("top pattern covers %d/%d: %s", got, len(chain), ranked[0].Pattern.Format(prog))
	}
}

// TestMultiVariableBugIsPartial: on the four-race BPF bug (#6), one
// pattern cannot cover the chain — the comprehensiveness gap.
func TestMultiVariableBugIsPartial(t *testing.T) {
	sc, _ := scenarios.ByName("syz06-bpf-devmap")
	prog := sc.MustProgram()
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := fz.CollectRuns(400)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Analyze(runs)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := kvm.New(prog)
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chain := d.Chain.Races()
	if got := Covers(ranked[0], chain); got >= len(chain) {
		t.Errorf("one pattern cannot cover a %d-race chain (covered %d)", len(chain), got)
	}
}

func TestAnalyzeNeedsMixedCorpus(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	fz, _ := fuzz.New(sc.MustProgram(), fuzz.Options{Seed: 1, PreemptProb: 0.001})
	runs, err := fz.CollectRuns(3)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only passing runs.
	for _, r := range runs {
		if r.Failed() {
			return // corpus happened to be mixed; fine
		}
	}
	if _, err := Analyze(runs); err == nil {
		t.Error("pure-passing corpus should fail")
	}
}

func TestPatternFormatting(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	a1, _ := prog.ByLabel("A1")
	b1, _ := prog.ByLabel("B1")
	p := Pattern{Kind: OrderViolation, Addr: 0x100,
		First:  site("A", a1.ID),
		Second: site("B", b1.ID)}
	if got := p.Format(prog); got == "" {
		t.Error("empty format")
	}
	if OrderViolation.String() != "order violation" || AtomicityViolation.String() != "atomicity violation" {
		t.Error("bad kind names")
	}
}

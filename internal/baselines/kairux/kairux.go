// Package kairux reimplements the decision procedure of Kairux (Zhang et
// al., SOSP'19) as the paper's §5.3 comparison baseline: the root cause of
// a failure is the *inflection point* — the first instruction of the
// failed run that deviates from the longest common prefix with the most
// similar non-failed run.
//
// The paper's critique, which this reimplementation lets the evaluation
// demonstrate: an inflection point is a single instruction, so for kernel
// concurrency failures involving multiple data races and race-steered
// control flows it cannot satisfy the comprehensiveness requirement —
// e.g. for the Figure 9 bug it points at the kworker's kfree (K1) without
// explaining that K1 only runs because of the A1 => B1 race in different
// threads.
package kairux

import (
	"fmt"

	"aitia/internal/kir"
	"aitia/internal/sched"
)

// Result is an inflection-point diagnosis.
type Result struct {
	// Site is the inflection point: the first deviating instruction of
	// the failed run.
	Site sched.Site
	// Instr is the instruction at the inflection point.
	Instr kir.Instr
	// PrefixLen is the length of the longest common prefix between the
	// failed run and its most similar passing run.
	PrefixLen int
	// ClosestPass indexes the passing run realizing that prefix.
	ClosestPass int
}

// Format renders the diagnosis.
func (r *Result) Format(prog *kir.Program) string {
	return fmt.Sprintf("inflection point: %s (%s) after a common prefix of %d instructions",
		sched.SiteName(prog, r.Site), r.Instr.String(), r.PrefixLen)
}

// Analyze locates the inflection point of a failed run against a corpus
// of non-failed runs. It returns an error when no passing runs are
// available or the failed run never deviates (both outside Kairux's
// assumptions).
func Analyze(failRun *sched.RunResult, passRuns []*sched.RunResult) (*Result, error) {
	if failRun == nil || !failRun.Failed() {
		return nil, fmt.Errorf("kairux: need a failed run")
	}
	if len(passRuns) == 0 {
		return nil, fmt.Errorf("kairux: need at least one non-failed run")
	}
	// Runs are aligned on their shared-memory interactions: instructions
	// touching only thread-private state (the long non-racy prologue of a
	// system call) schedule nondeterministically without affecting the
	// outcome, and including them would put the first "deviation" into
	// scheduling noise.
	shared := sharedAddrs(failRun, passRuns)
	fseq := siteSeq(failRun, shared)
	if len(fseq) == 0 {
		return nil, fmt.Errorf("kairux: failed run has no shared-memory accesses")
	}
	best, bestIdx := -1, -1
	for i, pr := range passRuns {
		if pr.Failed() {
			continue
		}
		if l := lcp(fseq, siteSeq(pr, shared)); l > best {
			best, bestIdx = l, i
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("kairux: corpus contains no non-failed runs")
	}
	if best >= len(fseq) {
		return nil, fmt.Errorf("kairux: failed run is a prefix of a passing run; no inflection point")
	}
	return &Result{
		Site:        fseq[best].site,
		Instr:       fseq[best].instr,
		PrefixLen:   best,
		ClosestPass: bestIdx,
	}, nil
}

type siteStep struct {
	site  sched.Site
	instr kir.Instr
}

// sharedAddrs collects the addresses accessed by more than one thread
// anywhere in the run set.
func sharedAddrs(failRun *sched.RunResult, passRuns []*sched.RunResult) map[uint64]bool {
	owner := make(map[uint64]string)
	shared := make(map[uint64]bool)
	note := func(res *sched.RunResult) {
		for _, e := range res.Seq {
			for _, a := range e.Accesses {
				if prev, ok := owner[a.Addr]; ok && prev != e.Name {
					shared[a.Addr] = true
				} else {
					owner[a.Addr] = e.Name
				}
			}
		}
	}
	note(failRun)
	for _, pr := range passRuns {
		note(pr)
	}
	return shared
}

// siteSeq projects a run onto its shared-memory-accessing instructions.
func siteSeq(res *sched.RunResult, shared map[uint64]bool) []siteStep {
	var out []siteStep
	for _, e := range res.Seq {
		touches := false
		for _, a := range e.Accesses {
			if shared[a.Addr] {
				touches = true
				break
			}
		}
		if touches {
			out = append(out, siteStep{site: e.Site(), instr: e.Instr})
		}
	}
	return out
}

func lcp(a, b []siteStep) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

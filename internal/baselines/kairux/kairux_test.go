package kairux

import (
	"strings"
	"testing"

	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// TestFigure9InflectionPoint reproduces the paper's §5.3 discussion: on
// the KVM irqfd bug, "an inflection point might be K1, since in a failed
// run A1 => B1 => K1 => A2, K1 is the instruction that firstly deviates
// from non-failed runs".
func TestFigure9InflectionPoint(t *testing.T) {
	sc, _ := scenarios.ByName("syz04-kvm-irqfd")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := fz.CollectRuns(300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(rep.Run, runs)
	if err != nil {
		t.Fatal(err)
	}
	name := prog.InstrName(res.Site.Instr)
	// The inflection point is inside the kworker's path or the UAF access
	// itself — a single instruction, not the cross-thread chain.
	if name != "K1" && name != "A2" {
		t.Errorf("inflection point = %s, want K1 or A2", name)
	}
	if !strings.Contains(res.Format(prog), "inflection point") {
		t.Errorf("Format = %q", res.Format(prog))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	m, _ := kvm.New(prog)
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(rep.Run, nil); err == nil {
		t.Error("no passing runs should fail")
	}
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("nil failed run should fail")
	}
	// A corpus containing only the failing run itself is unusable.
	if _, err := Analyze(rep.Run, []*sched.RunResult{rep.Run}); err == nil {
		t.Error("corpus without passing runs should fail")
	}
}

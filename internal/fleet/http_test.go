package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aitia/internal/scenarios"
)

// TestHTTPTransportExecutesBranch: a full diagnosis whose branches
// travel over the real wire — program as kasm text, batch and result as
// JSON, executed by BranchHandler on a remote listener — must be
// byte-identical to the in-process baseline. This pins the entire
// serialization path: kasm parse∘disassemble, access-map export/import,
// trace and leaf round-trips.
func TestHTTPTransportExecutesBranch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/branch", BranchHandler())
	mux.HandleFunc("GET /v1/fleet/ping", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	coord := New(Config{
		ID:       "coord",
		Peers:    []string{"coord", "worker"},
		Epoch:    1,
		LeaseTTL: time.Second,
		Transport: &HTTPTransport{
			Peers: map[string]string{"worker": srv.URL},
		},
	})

	for _, name := range []string{"cve-2017-15649", "syz08-j1939-refcount"} {
		sc, ok := scenarios.ByName(name)
		if !ok {
			t.Fatalf("unknown scenario %s", name)
		}
		want := fleetPipeline(t, sc, nil)
		disp := coord.Dispatcher()
		got := fleetPipeline(t, sc, disp)
		if got != want {
			t.Errorf("%s: chain over HTTP = %q, want %q", name, got, want)
		}
		if disp.Degraded() != "" {
			t.Errorf("%s: degraded %q over a healthy wire", name, disp.Degraded())
		}
	}
	if coord.Status().RemoteBranches == 0 {
		t.Error("no branch crossed the wire")
	}

	tr := coord.cfg.Transport
	if err := tr.Ping(context.Background(), "worker"); err != nil {
		t.Errorf("ping: %v", err)
	}
	if err := tr.Ping(context.Background(), "stranger"); err == nil {
		t.Error("ping to an unknown peer succeeded")
	}
}

// TestHTTPTransportPeerGone: a connection-refused peer surfaces as
// ErrNodeDown-wrapped, which the dispatcher turns into mark-down and
// re-lease rather than a failed search.
func TestHTTPTransportPeerGone(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens anymore

	coord := New(Config{
		ID:        "coord",
		Peers:     []string{"coord", "worker"},
		Epoch:     1,
		LeaseTTL:  time.Second,
		Transport: &HTTPTransport{Peers: map[string]string{"worker": url}},
	})
	sc, _ := scenarios.ByName("cve-2017-15649")
	want := fleetPipeline(t, sc, nil)
	disp := coord.Dispatcher()
	got := fleetPipeline(t, sc, disp)
	if got != want {
		t.Errorf("chain with dead worker = %q, want %q", got, want)
	}
	if disp.Degraded() != ReasonPartitioned {
		t.Errorf("degraded = %q, want %q (the only worker is unreachable)", disp.Degraded(), ReasonPartitioned)
	}
}

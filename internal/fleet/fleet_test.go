package fleet

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"aitia/internal/core"
	"aitia/internal/faultinject"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// TestRingDeterministicPlacement: every node that knows the same member
// set computes the same owner and the same failover sequence for every
// key, regardless of the order the members were listed in.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n2", "n1", ""})
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("member sets diverge: %v vs %v", a.Nodes(), b.Nodes())
	}
	owned := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job|prog-%d", i)
		sa, sb := a.Sequence(key), b.Sequence(key)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("key %s: sequences diverge: %v vs %v", key, sa, sb)
		}
		if len(sa) != 3 {
			t.Fatalf("key %s: sequence %v does not cover the fleet", key, sa)
		}
		owned[sa[0]]++
	}
	// Consistent hashing should spread 200 keys across 3 nodes without
	// starving any member outright.
	for _, id := range a.Nodes() {
		if owned[id] == 0 {
			t.Errorf("node %s owns no keys: %v", id, owned)
		}
	}
}

// TestRingEmptyAndSingle: degenerate rings answer rather than panic.
func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil).Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	if got := NewRing([]string{"only"}).Owner("k"); got != "only" {
		t.Errorf("single ring owner = %q, want only", got)
	}
}

// fleetPipeline diagnoses one scenario with the given dispatcher (nil
// for the plain parallel baseline) and returns the formatted chain.
func fleetPipeline(t *testing.T, sc *scenarios.Scenario, d core.BranchDispatcher) string {
	t.Helper()
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
		Workers:   4,
		Dispatch:  d,
	})
	if err != nil {
		t.Fatalf("Reproduce: %v", err)
	}
	diag, err := core.Analyze(m, rep, core.AnalysisOptions{LeakCheck: sc.NeedsLeakCheck(), Workers: 4})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return diag.Chain.Format(prog)
}

func testCluster(cfg ClusterConfig) *LocalCluster {
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 500 * time.Millisecond
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	return NewLocalCluster([]string{"n1", "n2", "n3"}, cfg)
}

// TestFleetDiagnosisMatchesSerial: a clean 3-node fleet produces the
// byte-identical chain to the plain parallel search, with branches
// actually executed remotely.
func TestFleetDiagnosisMatchesSerial(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	want := fleetPipeline(t, sc, nil)

	c := testCluster(ClusterConfig{})
	coord := c.Node("n1")
	disp := coord.Dispatcher()
	got := fleetPipeline(t, sc, disp)
	if got != want {
		t.Errorf("fleet chain = %q, want %q", got, want)
	}
	if disp.Degraded() != "" {
		t.Errorf("clean fleet degraded: %q", disp.Degraded())
	}
	st := coord.Status()
	if st.RemoteBranches == 0 {
		t.Error("no branches executed remotely — the fleet path never ran")
	}
	if st.ActiveLeases != 0 {
		t.Errorf("%d leases still active after the diagnosis", st.ActiveLeases)
	}
}

// TestFleetSurvivesNodeDeath: a seeded node-death fault SIGKILLs an
// executor mid-diagnosis. Its leases expire, its branches are re-leased
// to the survivor, and the chain is still byte-identical — no accepted
// work is lost and no lost work is skipped.
func TestFleetSurvivesNodeDeath(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	want := fleetPipeline(t, sc, nil)

	plan := faultinject.NewPlan(7, 0).SetRate(faultinject.KindNodeDeath, 1)
	c := testCluster(ClusterConfig{Fault: plan})
	coord := c.Node("n1")
	got := fleetPipeline(t, sc, coord.Dispatcher())
	if got != want {
		t.Errorf("chain after node death = %q, want %q", got, want)
	}
	killed := 0
	for _, id := range c.Nodes() {
		if c.Killed(id) {
			killed++
		}
	}
	// Rate 1 kills the elected executor on the first attempt of the first
	// branch (and on retries until the budget breaks the loop), so at
	// least one peer must be dead; the coordinator never kills itself.
	if killed == 0 {
		t.Error("no node was killed with node-death rate 1")
	}
	if c.Killed(coord.ID()) {
		t.Error("coordinator killed itself")
	}
}

// TestFleetInjectedExpiryReexecutes: lease-expiry faults at rate 1 fence
// off every first result; the dispatcher must re-lease and re-execute
// until an attempt's result survives validation, identically.
func TestFleetInjectedExpiryReexecutes(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	want := fleetPipeline(t, sc, nil)

	// Expiry fires per (branch, attempt) pair; rate 0.5 lets retries get
	// through while forcing plenty of fenced results.
	plan := faultinject.NewPlan(11, 0).SetRate(faultinject.KindLeaseExpiry, 0.5)
	c := testCluster(ClusterConfig{Fault: plan})
	coord := c.Node("n2")
	got := fleetPipeline(t, sc, coord.Dispatcher())
	if got != want {
		t.Errorf("chain under injected expiry = %q, want %q", got, want)
	}
	st := coord.Status()
	if st.InjectedExpiry == 0 {
		t.Error("no expiry fired at rate 0.5")
	}
	if st.Reexecuted == 0 {
		t.Error("expiries fired but nothing was re-executed")
	}
	if lt := st.Leases; lt.StaleFence == 0 {
		t.Errorf("fencing never rejected a stale result: %+v", lt)
	}
}

// TestFleetPartitionDegradesToLocal: a coordinator cut off from every
// peer must not hang and must not fail — it degrades to the local
// serial sweep, reports the machine-readable reason, and still produces
// the identical diagnosis.
func TestFleetPartitionDegradesToLocal(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	want := fleetPipeline(t, sc, nil)

	c := testCluster(ClusterConfig{})
	coord := c.Node("n3")
	c.Partition("n3")
	disp := coord.Dispatcher()
	got := fleetPipeline(t, sc, disp)
	if got != want {
		t.Errorf("partitioned chain = %q, want %q", got, want)
	}
	if disp.Degraded() != ReasonPartitioned {
		t.Errorf("degraded = %q, want %q", disp.Degraded(), ReasonPartitioned)
	}
	if st := coord.Status(); st.RemoteBranches != 0 {
		t.Errorf("partitioned coordinator still ran %d remote branches", st.RemoteBranches)
	}
}

// TestFleetHandoffDrop: partition faults on the send path drop the
// dispatch message; the branch is re-leased (possibly to another peer)
// and the diagnosis is unchanged.
func TestFleetHandoffDrop(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	want := fleetPipeline(t, sc, nil)

	plan := faultinject.NewPlan(13, 0).SetRate(faultinject.KindPartition, 0.5)
	c := testCluster(ClusterConfig{Fault: plan})
	coord := c.Node("n1")
	got := fleetPipeline(t, sc, coord.Dispatcher())
	if got != want {
		t.Errorf("chain under handoff drops = %q, want %q", got, want)
	}
	if st := coord.Status(); st.HandoffDrops == 0 {
		t.Error("no handoff drop fired at rate 0.5")
	}
}

// TestClusterReachability: the local transport's liveness gates — kill
// is permanent and partition is bidirectional but healable.
func TestClusterReachability(t *testing.T) {
	c := testCluster(ClusterConfig{})
	tr := &localTransport{c: c, from: "n1"}
	ctx := context.Background()
	if err := tr.Ping(ctx, "n2"); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	c.Partition("n2")
	if err := tr.Ping(ctx, "n2"); err == nil {
		t.Fatal("ping reached a partitioned node")
	}
	c.Heal("n2")
	if err := tr.Ping(ctx, "n2"); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
	c.Kill("n2")
	if err := tr.Ping(ctx, "n2"); err == nil {
		t.Fatal("ping reached a dead node")
	}
	c.Heal("n2")
	if err := tr.Ping(ctx, "n2"); err == nil {
		t.Fatal("heal resurrected a killed node")
	}
	if !c.Node("n1").Alive("n3") {
		t.Fatal("n3 wrongly observed down")
	}
}

// TestNodeStatusSnapshot: Status reflects membership, liveness and the
// job-routing view.
func TestNodeStatusSnapshot(t *testing.T) {
	c := testCluster(ClusterConfig{Epoch: 5})
	n := c.Node("n1")
	c.Kill("n3")
	st := n.Status()
	if st.Node != "n1" || st.Epoch != 5 {
		t.Errorf("status = %+v, want node n1 epoch 5", st)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peers = %v, want all 3 members", st.Peers)
	}
	for _, p := range st.Peers {
		wantAlive := p.ID != "n3"
		if p.Alive != wantAlive {
			t.Errorf("peer %s alive = %v, want %v", p.ID, p.Alive, wantAlive)
		}
		if p.Self != (p.ID == "n1") {
			t.Errorf("peer %s self = %v", p.ID, p.Self)
		}
	}
	// Ownership agrees across survivors even after the death.
	if o1, o2 := c.Node("n1").OwnerOf("deadbeef"), c.Node("n2").OwnerOf("deadbeef"); o1 != o2 {
		t.Errorf("owners diverge after a death: %s vs %s", o1, o2)
	}
}

// Package fleet is the multi-node mode of the diagnosis service: a set
// of aitia-serve replicas that route jobs to owners by consistent hash
// of the program, hand jobs off when an owner is down, and distribute
// LIFS deepening-phase branches — the unit the local worker pool shards
// — to remote executors under heartbeat-renewed, fencing-token leases.
//
// The design constraint is inherited from the whole pipeline: a fleet
// diagnosis must be byte-identical to a serial one. Branch exploration
// is a pure function of the dispatched batch (see core.ExecuteBranch),
// so placement, re-execution after a lost lease, and degradation to
// local search can never change a chain — only availability and stats.
// Every fault-injection decision is keyed by the branch's stable
// identity (program hash, phase budget, unit ordinal), never by which
// node drew the work, so chaos runs fire the same faults regardless of
// fleet size.
package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"aitia/internal/core"
	"aitia/internal/durable"
	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/obs"
)

// DefaultLeaseTTL is the branch-lease duration when the config leaves
// it zero: long enough that a healthy executor's heartbeats (at TTL/3)
// always land, short enough that a dead node's work is reclaimed fast.
const DefaultLeaseTTL = 2 * time.Second

// ReasonPartitioned is the machine-readable PartialReason a diagnosis
// carries when its coordinator could not reach any fleet peer and
// degraded to local serial search.
const ReasonPartitioned = "fleet_partitioned"

// ErrNodeDown is what a transport returns for a dead or unreachable
// peer.
var ErrNodeDown = errors.New("fleet: node down")

// Transport moves fleet messages between nodes. The in-process
// LocalCluster implementation backs tests and the bench chaos gate; the
// HTTP implementation backs real multi-process fleets.
type Transport interface {
	// ExecuteBranch runs work item i of the batch on the given node and
	// returns its result (exactly core.ExecuteBranch on the far side).
	ExecuteBranch(ctx context.Context, node string, prog *kir.Program, batch *core.BranchBatch, i int) (*core.BranchResult, error)
	// Ping probes a peer's liveness.
	Ping(ctx context.Context, node string) error
}

// Config assembles a fleet node.
type Config struct {
	// ID is this node's stable identity; Peers is the full member list
	// (including ID). Every node must be configured with the same set —
	// consistent hashing depends on it.
	ID    string
	Peers []string
	// Epoch is the fleet incarnation. Leases journaled under a prior
	// epoch are fenced off on recovery, never honored.
	Epoch uint64
	// LeaseTTL bounds how long a branch lease lives between heartbeats
	// (DefaultLeaseTTL when zero).
	LeaseTTL time.Duration
	// Journal, when set, makes lease transitions durable (the service
	// WAL; lease records coexist with job records — see durable.LeaseRecord).
	Journal *durable.Journal
	// Fault arms the chaos kinds (node-death, lease-expiry, partition).
	Fault *faultinject.Plan
	// Tracer receives lease/handoff/remote-branch spans (all Volatile —
	// placement facts, not search facts). Nil disables at zero cost.
	Tracer *obs.Tracer
	// Transport reaches the peers.
	Transport Transport
	// Killer, when set, is invoked once when a node-death fault elects a
	// victim: the cluster-level SIGKILL (LocalCluster marks the node
	// dead for every subsequent message; a process fleet would kill the
	// process). Nil degrades node-death to an unreachable-peer fault.
	Killer func(node string)
}

// nodeStats are the node's fleet counters.
type nodeStats struct {
	remoteBranches atomic.Uint64 // branch results accepted from peers
	reexecs        atomic.Uint64 // branches re-executed after a fenced-off lease
	injectedExpiry atomic.Uint64 // lease-expiry faults fired
	handoffDrops   atomic.Uint64 // partition faults that dropped a dispatch
	abandoned      atomic.Uint64 // branches the fleet gave up on (swept locally)
	jobHandoffs    atomic.Uint64 // jobs taken over from (or forwarded past) a dead owner
}

// Node is one fleet member: the routing rings, the lease table, and the
// dispatcher factory the service plugs into each job's search.
type Node struct {
	cfg      Config
	jobRing  *Ring // all peers: who owns a job
	workRing *Ring // peers minus self: who executes this node's branches
	leases   *durable.LeaseTable

	mu       sync.Mutex
	down     map[string]bool
	degraded string // last dispatch degradation reason

	stats nodeStats
}

// New assembles a node. The lease table folds nothing here — journal
// recovery happens in the service's Open pass, which routes lease
// records to RestoreLease.
func New(cfg Config) *Node {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	var others []string
	for _, p := range cfg.Peers {
		if p != cfg.ID {
			others = append(others, p)
		}
	}
	return &Node{
		cfg:      cfg,
		jobRing:  NewRing(cfg.Peers),
		workRing: NewRing(others),
		leases:   durable.NewLeaseTable(cfg.Journal, cfg.Epoch),
		down:     make(map[string]bool),
	}
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Epoch returns the fleet incarnation.
func (n *Node) Epoch() uint64 { return n.cfg.Epoch }

// LeaseTTL returns the effective branch-lease TTL.
func (n *Node) LeaseTTL() time.Duration { return n.cfg.LeaseTTL }

// Leases exposes the node's lease table (journal recovery, tests).
func (n *Node) Leases() *durable.LeaseTable { return n.leases }

// RestoreLease folds one journal payload into the lease table,
// reporting whether it was a lease record. The service's recovery pass
// calls this for every WAL payload before jobs replay.
func (n *Node) RestoreLease(payload []byte) bool { return n.leases.Restore(payload) }

// OwnerOf returns the fleet node owning the job for the given program
// hash.
func (n *Node) OwnerOf(progHash string) string { return n.jobRing.Owner("job|" + progHash) }

// JobSequence returns the failover order for a job: owner first, then
// handoff targets.
func (n *Node) JobSequence(progHash string) []string { return n.jobRing.Sequence("job|" + progHash) }

// Peers returns the full member list, sorted.
func (n *Node) Peers() []string { return n.jobRing.Nodes() }

// MarkDown records that a peer is unreachable (observed by a failed
// send or an injected death). Routing skips down peers.
func (n *Node) MarkDown(peer string) {
	n.mu.Lock()
	n.down[peer] = true
	n.mu.Unlock()
}

// MarkUp clears a peer's down mark (a later probe succeeded).
func (n *Node) MarkUp(peer string) {
	n.mu.Lock()
	delete(n.down, peer)
	n.mu.Unlock()
}

// Alive reports whether the node considers a peer reachable.
func (n *Node) Alive(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.down[peer]
}

// NoteJobHandoff counts a job routed past its dead owner.
func (n *Node) NoteJobHandoff() { n.stats.jobHandoffs.Add(1) }

// kill executes a node-death fault: the victim is killed at cluster
// level (when a Killer is wired) and marked down here either way.
func (n *Node) kill(victim string) {
	if n.cfg.Killer != nil {
		n.cfg.Killer(victim)
	}
	n.MarkDown(victim)
}

// span opens one Volatile fleet span (nil-tracer safe); callers attach
// Info values and End it. Fleet spans are always Volatile: which node
// ran a branch and how many times a lost lease forced a re-execution
// are placement facts that must never enter the canonical stream.
func (n *Node) span(name string) obs.Span {
	sp := n.cfg.Tracer.Begin("fleet", name, 0)
	sp.Volatile()
	return sp
}

// setDegraded records the node's last dispatch degradation.
func (n *Node) setDegraded(reason string) {
	n.mu.Lock()
	n.degraded = reason
	n.mu.Unlock()
}

// PeerStatus is one row of the fleet status.
type PeerStatus struct {
	ID    string `json:"id"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
}

// Status is the machine-readable fleet state served at /v1/fleet.
type Status struct {
	Node           string             `json:"node"`
	Epoch          uint64             `json:"epoch"`
	LeaseTTLMillis int64              `json:"lease_ttl_ms"`
	Peers          []PeerStatus       `json:"peers"`
	ActiveLeases   int                `json:"active_leases"`
	Leases         durable.LeaseStats `json:"leases"`
	RemoteBranches uint64             `json:"remote_branches"`
	Reexecuted     uint64             `json:"reexecuted"`
	InjectedExpiry uint64             `json:"injected_expiry"`
	HandoffDrops   uint64             `json:"handoff_drops"`
	Abandoned      uint64             `json:"abandoned"`
	JobHandoffs    uint64             `json:"job_handoffs"`
	Degraded       string             `json:"degraded,omitempty"`
}

// Status snapshots the node.
func (n *Node) Status() Status {
	n.mu.Lock()
	degraded := n.degraded
	var peers []PeerStatus
	for _, p := range n.jobRing.Nodes() {
		peers = append(peers, PeerStatus{ID: p, Self: p == n.cfg.ID, Alive: !n.down[p]})
	}
	n.mu.Unlock()
	return Status{
		Node:           n.cfg.ID,
		Epoch:          n.cfg.Epoch,
		LeaseTTLMillis: n.cfg.LeaseTTL.Milliseconds(),
		Peers:          peers,
		ActiveLeases:   n.leases.Active(),
		Leases:         n.leases.Stats(),
		RemoteBranches: n.stats.remoteBranches.Load(),
		Reexecuted:     n.stats.reexecs.Load(),
		InjectedExpiry: n.stats.injectedExpiry.Load(),
		HandoffDrops:   n.stats.handoffDrops.Load(),
		Abandoned:      n.stats.abandoned.Load(),
		JobHandoffs:    n.stats.jobHandoffs.Load(),
		Degraded:       degraded,
	}
}

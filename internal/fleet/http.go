package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"aitia/internal/core"
	"aitia/internal/kasm"
	"aitia/internal/kir"
)

// branchRequest is the wire form of one branch execution: the program
// travels as kasm text (the parse∘disassemble fixpoint the corpus
// factory already relies on), the batch as its JSON projection.
type branchRequest struct {
	Prog  string            `json:"prog"`
	Batch *core.BranchBatch `json:"batch"`
	Index int               `json:"index"`
}

type branchResponse struct {
	Result *core.BranchResult `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// HTTPTransport reaches fleet peers over their HTTP APIs — the
// process-fleet counterpart of LocalCluster's in-memory links.
type HTTPTransport struct {
	// Peers maps node ID to base URL (e.g. "http://10.0.0.2:8080").
	Peers  map[string]string
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 60 * time.Second}
}

func (t *HTTPTransport) base(node string) (string, error) {
	u, ok := t.Peers[node]
	if !ok {
		return "", fmt.Errorf("%w: no address for %s", ErrNodeDown, node)
	}
	return u, nil
}

// ExecuteBranch ships one branch to a peer's /v1/fleet/branch.
func (t *HTTPTransport) ExecuteBranch(ctx context.Context, node string, prog *kir.Program, batch *core.BranchBatch, i int) (*core.BranchResult, error) {
	base, err := t.base(node)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(branchRequest{Prog: kasm.Disassemble(prog), Batch: batch, Index: i})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/fleet/branch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNodeDown, node, err)
	}
	defer resp.Body.Close()
	var br branchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNodeDown, node, err)
	}
	if resp.StatusCode != http.StatusOK || br.Result == nil {
		return nil, fmt.Errorf("fleet: %s rejected branch: %s", node, br.Error)
	}
	return br.Result, nil
}

// Ping probes a peer's /v1/fleet/ping.
func (t *HTTPTransport) Ping(ctx context.Context, node string) error {
	base, err := t.base(node)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fleet/ping", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrNodeDown, node, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s: status %d", ErrNodeDown, node, resp.StatusCode)
	}
	return nil
}

// BranchHandler serves /v1/fleet/branch: the executor side of the HTTP
// transport. It parses the shipped program and runs core.ExecuteBranch
// — stateless, so any replica can execute any branch.
func BranchHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req branchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Batch == nil {
			writeBranch(w, http.StatusBadRequest, branchResponse{Error: "malformed branch request"})
			return
		}
		prog, err := kasm.Parse(req.Prog)
		if err != nil {
			writeBranch(w, http.StatusBadRequest, branchResponse{Error: fmt.Sprintf("parse program: %v", err)})
			return
		}
		res, err := core.ExecuteBranch(r.Context(), prog, req.Batch, req.Index)
		if err != nil {
			writeBranch(w, http.StatusUnprocessableEntity, branchResponse{Error: err.Error()})
			return
		}
		writeBranch(w, http.StatusOK, branchResponse{Result: res})
	}
}

func writeBranch(w http.ResponseWriter, code int, resp branchResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aitia/internal/core"
	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/obs"
)

// ClusterConfig shapes a LocalCluster.
type ClusterConfig struct {
	Epoch    uint64
	LeaseTTL time.Duration
	// Fault arms the fleet chaos kinds on every node's dispatcher (one
	// shared plan: decisions are keyed by branch identity, so sharing
	// changes nothing but the counters).
	Fault  *faultinject.Plan
	Tracer *obs.Tracer
}

// LocalCluster is an in-process fleet: N nodes sharing one transport,
// with SIGKILL (Kill) and network-partition (Partition) controls. It
// backs the fleet tests and the aitia-bench chaos gate — the same
// dispatcher, lease and routing code a process fleet runs, minus the
// wire.
type LocalCluster struct {
	mu          sync.Mutex
	nodes       map[string]*Node
	order       []string
	killed      map[string]bool
	partitioned map[string]bool
}

// NewLocalCluster builds an in-process fleet over the given node IDs.
func NewLocalCluster(ids []string, cfg ClusterConfig) *LocalCluster {
	c := &LocalCluster{
		nodes:       make(map[string]*Node, len(ids)),
		killed:      make(map[string]bool),
		partitioned: make(map[string]bool),
	}
	for _, id := range ids {
		c.order = append(c.order, id)
		c.nodes[id] = New(Config{
			ID:        id,
			Peers:     ids,
			Epoch:     cfg.Epoch,
			LeaseTTL:  cfg.LeaseTTL,
			Fault:     cfg.Fault,
			Tracer:    cfg.Tracer,
			Transport: &localTransport{c: c, from: id},
			Killer:    c.Kill,
		})
	}
	return c
}

// Node returns a member by ID (nil when unknown).
func (c *LocalCluster) Node(id string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Nodes returns the member IDs in construction order.
func (c *LocalCluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Kill SIGKILLs a node: every subsequent message to it fails, its
// in-flight executions are lost, and it never comes back. Accepted
// work (results already returned and merged) survives — that is the
// point of the lease protocol.
func (c *LocalCluster) Kill(id string) {
	c.mu.Lock()
	c.killed[id] = true
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	// Every survivor observes the death at its next send; mark eagerly
	// so routing skips the corpse immediately.
	for _, n := range nodes {
		if n.ID() != id {
			n.MarkDown(id)
		}
	}
}

// Killed reports whether a node has been killed.
func (c *LocalCluster) Killed(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed[id]
}

// Partition cuts a node off from every peer (messages in both
// directions drop) until Heal.
func (c *LocalCluster) Partition(id string) {
	c.mu.Lock()
	c.partitioned[id] = true
	c.mu.Unlock()
}

// Heal reconnects a partitioned node and clears the down marks its
// peers accumulated for it (and it for them).
func (c *LocalCluster) Heal(id string) {
	c.mu.Lock()
	delete(c.partitioned, id)
	killed := c.killed[id]
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	if killed {
		return // death is forever
	}
	for _, n := range nodes {
		if n.ID() != id {
			n.MarkUp(id)
		}
		if n.ID() == id {
			for _, p := range n.Peers() {
				if p != id && !c.Killed(p) {
					n.MarkUp(p)
				}
			}
		}
	}
}

// reachable decides whether a message from one node to another gets
// through right now.
func (c *LocalCluster) reachable(from, to string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed[to] {
		return fmt.Errorf("%w: %s is dead", ErrNodeDown, to)
	}
	if c.partitioned[from] || c.partitioned[to] {
		return fmt.Errorf("%w: %s cannot reach %s (partitioned)", ErrNodeDown, from, to)
	}
	if _, ok := c.nodes[to]; !ok {
		return fmt.Errorf("%w: unknown node %s", ErrNodeDown, to)
	}
	return nil
}

// localTransport carries one node's outbound messages across the
// cluster — in process, but through the same liveness gates a wire
// would impose.
type localTransport struct {
	c    *LocalCluster
	from string
}

func (t *localTransport) ExecuteBranch(ctx context.Context, node string, prog *kir.Program, batch *core.BranchBatch, i int) (*core.BranchResult, error) {
	if err := t.c.reachable(t.from, node); err != nil {
		return nil, err
	}
	res, err := core.ExecuteBranch(ctx, prog, batch, i)
	if err != nil {
		return nil, err
	}
	// The result travels back over the same link: a node killed or
	// partitioned mid-execution loses the reply.
	if rerr := t.c.reachable(node, t.from); rerr != nil {
		return nil, rerr
	}
	return res, nil
}

func (t *localTransport) Ping(ctx context.Context, node string) error {
	return t.c.reachable(t.from, node)
}

package fleet

import (
	"fmt"
	"sort"
)

// ringVnodes is the virtual-node count per member: enough that a
// three-node fleet splits keys near-evenly, small enough that ring
// construction stays trivial.
const ringVnodes = 64

// Ring is a consistent-hash ring over fleet node IDs. Placement is a
// pure function of (member set, key): every node that knows the same
// peer list routes the same key to the same owner, with no coordination
// — which is what makes replica-to-replica job handoff safe. Keys are
// `(*kir.Program).Hash()` for jobs and the branch lease key for
// distributed search units.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	h    uint64
	node string
}

// NewRing builds a ring over the given node IDs (duplicates and empties
// dropped). Construction is deterministic: the member order does not
// matter.
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{h: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every member in failover order for key: the owner
// first, then the distinct successors clockwise around the ring. A
// caller that finds seq[0] dead hands the key to seq[1], and every
// node computes the same handoff target.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	var out []string
	seen := make(map[string]bool, len(r.nodes))
	for n := 0; n < len(r.points) && len(out) < len(r.nodes); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// fnv64 is FNV-1a, the repo's standard deterministic string hash.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ringHash places a string on the ring: FNV-1a finalized with a
// splitmix64 round. Ring position compares full 64-bit values, and raw
// FNV of short near-identical strings ("n1#7" vs "n2#7") barely
// diffuses into the high bits — unfinalized, a three-node ring can
// starve a member outright.
func ringHash(s string) uint64 {
	z := fnv64(s) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aitia/internal/core"
	"aitia/internal/durable"
	"aitia/internal/faultinject"
	"aitia/internal/kir"
)

// Dispatcher leases a phase's branch units to remote executors — the
// fleet implementation of core.BranchDispatcher. One dispatcher serves
// one diagnosis (its Degraded reason becomes that diagnosis's
// PartialReason); the lease table and peer-liveness view are the
// node's, shared across jobs.
//
// The lease state machine per branch:
//
//	free --Acquire--> held --Release--> done (result accepted)
//	              |         --Expire---> free (TTL ran out, holder dead,
//	              |                       or an injected expiry): fence
//	              |                       bumped, branch re-leased
//	              +--- heartbeat Renew keeps held alive at TTL/3
//
// A result is accepted only while its lease is Valid (same fence, same
// epoch) — a slow holder whose lease was reclaimed gets fenced off and
// its branch re-executed, which is harmless precisely because branch
// execution is deterministic: the re-execution is byte-identical.
type Dispatcher struct {
	n *Node

	mu       sync.Mutex
	degraded string
}

// Dispatcher returns a per-job branch dispatcher backed by this node.
func (n *Node) Dispatcher() *Dispatcher { return &Dispatcher{n: n} }

// Degraded reports the machine-readable reason this job's dispatch fell
// back to local-only search ("" while the fleet held).
func (d *Dispatcher) Degraded() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

func (d *Dispatcher) setDegraded(reason string) {
	d.mu.Lock()
	d.degraded = reason
	d.mu.Unlock()
	d.n.setDegraded(reason)
}

// leaseKey names a branch for leasing and fault injection: the stable
// identity (program, phase budget, unit ordinal) — independent of fleet
// size, placement and timing.
func leaseKey(batch *core.BranchBatch, ordinal int) string {
	return fmt.Sprintf("branch|%s|k=%d|ord=%d", batch.ProgHash, batch.Budget, ordinal)
}

// RunBranches leases every work item of the batch to a remote executor
// and collects results. A slot is left nil when the fleet could not
// execute that branch (victim nodes dead, leases fenced, messages
// dropped past the retry budget): the search sweeps those up locally,
// so RunBranches degrades by returning less, never by blocking or
// failing the search.
func (d *Dispatcher) RunBranches(ctx context.Context, prog *kir.Program, batch *core.BranchBatch) ([]*core.BranchResult, error) {
	results := make([]*core.BranchResult, len(batch.Work))
	if len(batch.Work) == 0 {
		return results, nil
	}
	if len(d.n.workRing.Nodes()) == 0 {
		d.setDegraded(ReasonPartitioned)
		return results, nil
	}
	var wg sync.WaitGroup
	for i := range batch.Work {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = d.runOne(ctx, prog, batch, i)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	executed := 0
	for _, r := range results {
		if r != nil {
			executed++
		}
	}
	if executed == 0 {
		// Not one branch made it out and back: the coordinator is cut
		// off. The search runs serially on the local machine and the
		// diagnosis carries the reason.
		d.setDegraded(ReasonPartitioned)
	}
	return results, nil
}

// runOne drives one branch through the lease state machine until a
// result survives its fencing check or the retry budget is spent.
// Every fault decision is keyed by (branch identity, attempt), so a
// chaos seed fires the same faults however the fleet is shaped.
func (d *Dispatcher) runOne(ctx context.Context, prog *kir.Program, batch *core.BranchBatch, i int) *core.BranchResult {
	n := d.n
	w := batch.Work[i]
	key := leaseKey(batch, w.Ordinal)
	keyHash := fnv64(key)
	seq := n.workRing.Sequence(key)
	maxAttempts := 2*len(seq) + 2
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		executor := d.pickAlive(seq, attempt)
		if executor == "" {
			break // every peer down: abandon to the local sweep
		}
		// Node death: the fault elects the chosen executor as victim and
		// kills it fleet-wide — every lease it holds will expire, every
		// message to it will fail from here on.
		if n.cfg.Fault.Check(faultinject.KindNodeDeath, "fleet.branch", keyHash, attempt) != nil {
			sp := n.span("node-death")
			sp.Info("ordinal", int64(w.Ordinal))
			sp.Info("attempt", int64(attempt))
			sp.End()
			n.kill(executor)
			continue
		}
		lease, ok := n.leases.Acquire(key, executor, n.cfg.LeaseTTL, time.Now())
		if !ok {
			// A live lease is out (a prior attempt's holder may still be
			// executing). Force it over: its fence dies with it.
			if cur, held := n.leases.Holder(key); held {
				n.leases.Expire(key, cur.Fence)
			}
			continue
		}
		sp := n.span("lease-grant")
		sp.Info("ordinal", int64(w.Ordinal))
		sp.Info("fence", int64(lease.Fence))
		sp.End()
		// Partition: the dispatch message is dropped on the wire. The
		// lease dies, the branch is re-leased on the next attempt
		// (possibly to another node — a handoff).
		if n.cfg.Fault.Check(faultinject.KindPartition, "fleet.send", keyHash, attempt) != nil {
			n.stats.handoffDrops.Add(1)
			n.leases.Expire(key, lease.Fence)
			hsp := n.span("handoff-drop")
			hsp.Info("ordinal", int64(w.Ordinal))
			hsp.Info("attempt", int64(attempt))
			hsp.End()
			continue
		}
		res, err := d.execute(ctx, executor, prog, batch, i, lease)
		if err != nil {
			// The peer is gone (or the send failed): reclaim and hand off.
			n.MarkDown(executor)
			n.leases.Expire(key, lease.Fence)
			continue
		}
		// Lease expiry: the holder "stopped heartbeating" — the lease is
		// reclaimed just before its result lands, so the fencing check
		// below rejects the result and the branch is re-executed. The
		// re-execution returns identical bytes; only stats move.
		if n.cfg.Fault.Check(faultinject.KindLeaseExpiry, "fleet.lease", keyHash, attempt) != nil {
			n.stats.injectedExpiry.Add(1)
			n.leases.Expire(key, lease.Fence)
			esp := n.span("lease-expire")
			esp.Info("ordinal", int64(w.Ordinal))
			esp.Info("fence", int64(lease.Fence))
			esp.End()
		}
		if !n.leases.Valid(lease) {
			n.stats.reexecs.Add(1)
			continue
		}
		n.leases.Release(lease)
		n.stats.remoteBranches.Add(1)
		return res
	}
	n.stats.abandoned.Add(1)
	return nil
}

// pickAlive chooses the attempt's executor: the branch's failover
// sequence rotated by attempt, skipping peers observed down. Rotation
// (rather than always-first-alive) spreads retries of a flaky branch
// across the fleet instead of hammering one node.
func (d *Dispatcher) pickAlive(seq []string, attempt int) string {
	if len(seq) == 0 {
		return ""
	}
	for off := 0; off < len(seq); off++ {
		peer := seq[(attempt+off)%len(seq)]
		if d.n.Alive(peer) {
			return peer
		}
	}
	return ""
}

// execute ships the branch to its executor, heartbeating the lease at
// TTL/3 for as long as the execution runs. A failed heartbeat (the
// lease was fenced off under us) cancels the execution — its result
// would be rejected anyway.
func (d *Dispatcher) execute(ctx context.Context, executor string, prog *kir.Program, batch *core.BranchBatch, i int, lease durable.Lease) (*core.BranchResult, error) {
	n := d.n
	hbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		tick := time.NewTicker(n.cfg.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-hbCtx.Done():
				return
			case <-tick.C:
				if _, ok := n.leases.Renew(lease, n.cfg.LeaseTTL, time.Now()); !ok {
					cancel()
					return
				}
			}
		}
	}()
	sp := n.span("branch-remote")
	sp.Info("ordinal", int64(batch.Work[i].Ordinal))
	res, err := n.cfg.Transport.ExecuteBranch(hbCtx, executor, prog, batch, i)
	sp.End()
	return res, err
}

// The paper's Figure 9 case study (Table 3's bug #4): a use-after-free in
// the KVM irqfd path whose causality crosses the thread boundary — the
// kworker that frees the object only runs because of a race in a *third*
// context. The example contrasts AITIA's causality chain with the
// single-instruction diagnosis of the Kairux baseline (§5.3): the
// inflection point names the kfree, but not why the kfree ran at all.
//
//	go run ./examples/kvm-irqfd
package main

import (
	"fmt"
	"log"

	"aitia/internal/baselines/kairux"
	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

func main() {
	sc, ok := scenarios.ByName("syz04-kvm-irqfd")
	if !ok {
		log.Fatal("corpus scenario missing")
	}
	prog := sc.MustProgram()

	m, err := kvm.New(prog)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("buggy execution (Figure 9(a)):")
	fmt.Println("  " + rep.Run.FormatSeq(prog, false))
	fmt.Println("\nAITIA causality chain (Figure 9(b)):")
	fmt.Println("  " + d.Chain.Format(prog))
	fmt.Println()
	fmt.Println("reading the chain: the worker's kfree (K1) races with the syscall's")
	fmt.Println("late initialization (A2) only because the deassign path observed the")
	fmt.Println("half-initialized object (A1 => B1) and queued the shutdown work —")
	fmt.Println("a race-steered control flow across three execution contexts.")

	// Kairux comparison: the inflection point is a single instruction.
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	runs, err := fz.CollectRuns(200)
	if err != nil {
		log.Fatal(err)
	}
	kres, err := kairux.Analyze(rep.Run, runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nKairux baseline on the same failure:")
	fmt.Println("  " + kres.Format(prog))
	fmt.Println("the inflection point does not explain that K1 executed because of")
	fmt.Println("A1 => B1 in two other threads — the comprehensiveness gap of §5.3.")
}

// Quickstart: diagnose the paper's Figure 1 example — a NULL dereference
// caused by a multi-variable race on (ptr_valid, ptr) — through the
// public API, and print the causality chain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aitia"
)

// The program under test, in kasm form: thread A publishes ptr_valid and
// dereferences ptr; thread B checks ptr_valid and, if set, NULLs ptr.
// The failure needs A1 => B1 (a race-steered control flow: B2 only
// executes after A1) and B2 => A2.
const src = `
global ptr_valid = 0
ptr    ptr -> obj
global obj = 42

thread A thread_a
thread B thread_b

func thread_a
@A1     store [ptr_valid], 1
@A2     load r1, [ptr]
@A2d    load r2, [r1]
        ret
end

func thread_b
@B1     load r1, [ptr_valid]
        beq r1, 0, out
@B2     store [ptr], 0
out:
        ret
end
`

func main() {
	prog, err := aitia.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := aitia.Diagnose(prog, aitia.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("failure:        ", res.Failure)
	fmt.Println("failing order:  ", res.FailSequence)
	fmt.Println("causality chain:", res.Chain)
	fmt.Println()
	fmt.Println("chain races:")
	for _, r := range res.ChainRaces {
		fmt.Printf("  %s (%s) => %s (%s) on %s\n",
			r.First, r.FirstThread, r.Second, r.SecondThread, r.Variable)
	}
	fmt.Printf("\nstatistics: %d LIFS schedules, %d interleaving(s), %d flip tests\n",
		res.LIFSSchedules, res.Interleavings, res.AnalysisSchedules)
	fmt.Println("\nA fix that forbids any one chain order (e.g. making the two")
	fmt.Println("variables' accesses atomic) prevents the failure.")
}

// The full bug-finder-to-diagnosis pipeline of §4.1: a Syzkaller-style
// random-schedule fuzzing campaign finds a failure in a TOCTOU program,
// the crash report and ftrace-style trace are modelled into slices
// (backward from the failure, with the open/close fd closure), a
// reproducer runs LIFS on the winning slice, and Causality Analysis
// produces the chain — all through the public API.
//
//	go run ./examples/fuzz-pipeline
package main

import (
	"fmt"
	"log"

	"aitia"
)

// A device driver's config pointer is swapped by ioctl while read() uses
// it; read() checks the pointer before dereferencing, but the check is a
// separate access (TOCTOU). A third syscall only bumps a statistics
// counter (a benign race that must not appear in the chain).
const src = `
ptr    dev_conf -> conf0
global conf0 = 7
global dev_stats = 1

thread read$dev    dev_read
thread ioctl$DEV   dev_ioctl
thread write$dev   dev_write

func dev_read
@SA     ref_get r9, [dev_stats]
@R1     load r1, [dev_conf]
        beq r1, 0, out
@R2     load r2, [dev_conf]
@R2d    load r3, [r2]
out:
        ret
end

func dev_ioctl
@I1     store [dev_conf], 0
        ret
end

func dev_write
@SB     ref_get r9, [dev_stats]
        ret
end
`

func main() {
	prog, err := aitia.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 0: what would the bug finder hand AITIA? (trace + slices)
	trace, slices, err := aitia.FuzzTrace(prog, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== fuzzer trace (ftrace analogue) ==")
	fmt.Print(trace)
	fmt.Println("\n== slices, backward from the failure ==")
	for i, s := range slices {
		fmt.Printf("  %d: %s\n", i+1, s)
	}

	// Stages 1-3: fuzz, model, reproduce, diagnose.
	res, err := aitia.FuzzAndDiagnose(prog, 3, 0, aitia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== finding (after %d fuzzing runs) ==\n", res.Runs)
	fmt.Print(res.CrashReport)
	fmt.Println("\n== diagnosis ==")
	fmt.Println("chain:", res.Diagnosis.Chain)
	for _, b := range res.Diagnosis.Benign {
		fmt.Printf("benign race excluded: %s => %s on %s\n", b.First, b.Second, b.Variable)
	}
}

// The paper's §5.1 verification loop as a workflow: diagnose the bug, read
// the chain as a patch specification ("forbid any one of these orders"),
// apply a candidate patch, and let AITIA verify it. An incomplete patch —
// the paper's motivating observation is that developers write incorrect
// concurrency fixes — is caught because the failure still reproduces.
//
//	go run ./examples/fix-validation
package main

import (
	"fmt"
	"log"

	"aitia/internal/core"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

func main() {
	sc, ok := scenarios.ByName("cve-2017-15649")
	if !ok {
		log.Fatal("corpus scenario missing")
	}
	prog := sc.MustProgram()

	// 1. Diagnose.
	m, err := kvm.New(prog)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain:", d.Chain.Format(prog))
	fmt.Println("\nthe chain is a patch specification: forbid any one order and the")
	fmt.Println("BUG_ON cannot fire.")

	// 2. An incomplete patch: serialize only the setsockopt path. The
	//    bind path still races into the window.
	raw, err := sc.RawProgram()
	if err != nil {
		log.Fatal(err)
	}
	broken, err := raw.FixSerialize("fanout_add")
	if err != nil {
		log.Fatal(err)
	}
	bm, err := kvm.New(broken)
	if err != nil {
		log.Fatal(err)
	}
	wi := sc.WantInstr()
	if in, ok := broken.ByLabel(sc.WantLabel); ok {
		wi = in.ID
	}
	if _, err := core.Reproduce(bm, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: wi}); err == nil {
		fmt.Println("\ncandidate patch 1 (lock fanout_add only): REJECTED — still reproduces.")
	} else {
		fmt.Println("\ncandidate patch 1 unexpectedly verified:", err)
	}

	// 3. The real fix: both paths access (po->running, po->fanout)
	//    atomically — the chain's first conjunction becomes impossible.
	fixed, err := sc.Fixed()
	if err != nil {
		log.Fatal(err)
	}
	fm, err := kvm.New(fixed)
	if err != nil {
		log.Fatal(err)
	}
	wi2 := wi
	if in, ok := fixed.ByLabel(sc.WantLabel); ok {
		wi2 = in.ID
	}
	if _, err := core.Reproduce(fm, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: wi2}); core.IsNotReproduced(err) {
		fmt.Println("candidate patch 2 (serialize both paths): VERIFIED — search exhausted,")
		fmt.Println("the failure cannot manifest under any explored interleaving.")
	} else {
		fmt.Println("candidate patch 2 rejected:", err)
	}
}

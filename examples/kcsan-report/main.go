// Report-driven diagnosis: start from what syzbot actually hands a
// diagnoser — a KCSAN-style textual crash report — and recover the full
// causality chain from the report text alone.
//
// The example renders Figure 1's failure as a crash report, diagnoses
// from that text, then degrades the report (drops one access block,
// erases a stack offset) and shows the diagnosis still landing on the
// same chain, with every resolution gap surfaced in ReportPartial.
//
//	go run ./examples/kcsan-report
package main

import (
	"fmt"
	"log"
	"strings"

	"aitia"
)

func main() {
	// Render the failure the way a sanitizer would report it. In a real
	// deployment this text arrives from the outside; here we synthesize
	// it from a reproduction so the example is self-contained.
	report, err := aitia.ScenarioReport("fig1", aitia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the crash report (the diagnoser's only input):")
	fmt.Println(indent(report))

	prog, err := aitia.ScenarioProgram("fig1")
	if err != nil {
		log.Fatal(err)
	}

	// Diagnose from the report text alone: its racing pair seeds a
	// constrained LIFS search (the reported accesses are conflict points
	// before any discovery run; paths that can no longer produce the
	// reported failure stop branching and are not counted).
	res, err := aitia.DiagnoseReport(prog, report, aitia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diagnosis from the full report:")
	fmt.Println("  chain:          ", res.Chain)
	fmt.Println("  LIFS schedules: ", res.LIFSSchedules)
	fmt.Println("  resolution gaps:", gaps(res.ReportPartial))

	// Reports from the field are rarely this clean. Degrade it: keep
	// only the title line. Kind and failing site still resolve; the
	// racing pair is gone, so the search widens — and says so.
	title := strings.SplitN(report, "\n", 2)[0] + "\n"
	degraded, err := aitia.DiagnoseReport(prog, title, aitia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndiagnosis from the title line alone:")
	fmt.Println("  chain:          ", degraded.Chain)
	fmt.Println("  LIFS schedules: ", degraded.LIFSSchedules)
	fmt.Println("  resolution gaps:", gaps(degraded.ReportPartial))

	if res.Chain != degraded.Chain {
		log.Fatalf("chains diverged: %q vs %q", res.Chain, degraded.Chain)
	}
	fmt.Println("\nsame chain both ways: a degraded report costs schedules,")
	fmt.Println("never the diagnosis — every hole widens a search constraint")
	fmt.Println("and is recorded, instead of being guessed away.")
}

func gaps(reasons []string) string {
	if len(reasons) == 0 {
		return "none"
	}
	return strings.Join(reasons, ", ")
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

package aitia_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"aitia"
)

// TestSummaryJSONRoundTrip checks that a synthetic summary survives an
// encoding/json round trip bit for bit.
func TestSummaryJSONRoundTrip(t *testing.T) {
	in := &aitia.ResultSummary{
		Scenario:     "fig1",
		Failure:      "KASAN: null-ptr-deref",
		FailSequence: "A1 B1 B2 A2",
		Chain:        "A1 => B1 → B2 => A2 → KASAN: null-ptr-deref",
		ChainRaces: []aitia.Race{
			{First: "A1", Second: "B1", FirstThread: "A", SecondThread: "B", Variable: "ptr_valid"},
			{First: "B2", Second: "A2", FirstThread: "B", SecondThread: "A", Variable: "ptr", Phantom: true},
		},
		BenignRaces: []aitia.Race{
			{First: "A3", Second: "B3", FirstThread: "A", SecondThread: "B", Variable: "stat"},
		},
		Verdicts: []aitia.RaceVerdict{
			{Race: aitia.Race{First: "A1", Second: "B1"}, Verdict: "root-cause"},
		},
		SlicesTried:       2,
		ReproduceTime:     137 * time.Millisecond,
		DiagnoseTime:      42 * time.Millisecond,
		LIFSSchedules:     9,
		Interleavings:     1,
		AnalysisSchedules: 4,
		TestSetSize:       4,
		MemAccesses:       250,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := &aitia.ResultSummary{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the summary:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSummaryFromDiagnosis checks that a real diagnosis summarizes into a
// self-contained value that round-trips through JSON.
func TestSummaryFromDiagnosis(t *testing.T) {
	res, err := aitia.DiagnoseScenario("fig1", aitia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Chain == "" || sum.Chain != res.Chain {
		t.Errorf("summary chain = %q, result chain = %q", sum.Chain, res.Chain)
	}
	if len(sum.Verdicts) != len(sum.ChainRaces)+len(sum.BenignRaces) {
		t.Errorf("verdicts = %d, want %d", len(sum.Verdicts), len(sum.ChainRaces)+len(sum.BenignRaces))
	}
	if sum.ReproduceTime <= 0 || sum.DiagnoseTime <= 0 {
		t.Error("missing stage timings")
	}
	if sum.SlicesTried != 1 {
		t.Errorf("slices tried = %d, want 1", sum.SlicesTried)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	out := &aitia.ResultSummary{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, out) {
		t.Error("real diagnosis summary did not round-trip through JSON")
	}
}

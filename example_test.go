package aitia_test

import (
	"fmt"

	"aitia"
)

// ExampleDiagnoseScenario diagnoses the paper's running example,
// CVE-2017-15649, and prints its causality chain — the Figure 3 result.
func ExampleDiagnoseScenario() {
	res, err := aitia.DiagnoseScenario("cve-2017-15649", aitia.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Failure)
	fmt.Println(res.Chain)
	// Output:
	// kernel BUG (BUG_ON)
	// (A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → kernel BUG (BUG_ON)
}

// ExampleCompile diagnoses a program written in the kasm text format: the
// abstract two-variable race of the paper's Figure 1.
func ExampleCompile() {
	prog, err := aitia.Compile(`
global ptr_valid = 0
ptr    ptr -> obj
global obj = 42

thread A thread_a
thread B thread_b

func thread_a
@A1  store [ptr_valid], 1
@A2  load r1, [ptr]
@A2d load r2, [r1]
     ret
end

func thread_b
@B1  load r1, [ptr_valid]
     beq r1, 0, out
@B2  store [ptr], 0
out:
     ret
end
`)
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	res, err := aitia.Diagnose(prog, aitia.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Chain)
	for _, r := range res.Benign {
		fmt.Printf("benign: %s => %s\n", r.First, r.Second)
	}
	// Output:
	// A1 => B1 → B2 => A2 → NULL pointer dereference
}

// ExampleScenarios lists part of the built-in corpus.
func ExampleScenarios() {
	for _, s := range aitia.Scenarios() {
		if s.Group == "figure" {
			fmt.Println(s.Name)
		}
	}
	// Output:
	// fig1
	// fig4a
	// fig4b
	// fig4c
	// fig5
	// fig7
}

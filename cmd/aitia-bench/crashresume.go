package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"aitia/internal/core"
	"aitia/internal/durable"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// runCrashResume is the in-process half of the crash-recovery CI gate:
// it proves, without spawning any process, that a diagnosis cut mid-way
// resumes from its durable checkpoints to the exact same answer with
// strictly fewer schedules. For each configuration it runs the pipeline
// cold (the golden outcome), re-runs with checkpoints under a schedule
// budget cut to half the cold cost so the search aborts mid-phase, then
// resumes with the full budget and compares chain, reproduction and
// schedule counts. A second leg interrupts the causality analysis at
// its first settled-flip checkpoint and resumes that too.
func runCrashResume() error {
	configs := []struct {
		scenario string
		workers  int
		every    int
	}{
		{"cve-2017-15649", 1, 2}, // serial with intra-phase checkpoints
		{"cve-2017-15649", 8, 0}, // parallel, phase boundaries only
		{"syz08-j1939-refcount", 1, 4},
	}
	bad := 0
	for _, c := range configs {
		label := fmt.Sprintf("%s/w%d/every%d", c.scenario, c.workers, c.every)
		if err := crashResumeOne(c.scenario, c.workers, c.every); err != nil {
			fmt.Printf("FAIL %-34s %v\n", label, err)
			bad++
			continue
		}
		fmt.Printf("ok   %-34s interrupted search and analysis both resumed to the golden diagnosis\n", label)
	}
	if bad > 0 {
		return fmt.Errorf("crash-resume: %d of %d configurations failed", bad, len(configs))
	}
	fmt.Printf("crash-resume: all %d configurations recover deterministically\n", len(configs))
	return nil
}

func crashResumeOne(name string, workers, every int) error {
	sc, ok := scenarios.ByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", name)
	}
	lifsOpts := func(ck *core.CheckpointConfig, maxSched int) core.LIFSOptions {
		return core.LIFSOptions{
			WantKind:     sc.WantKind,
			WantInstr:    sc.WantInstr(),
			LeakCheck:    sc.NeedsLeakCheck(),
			Workers:      workers,
			MaxSchedules: maxSched,
			Checkpoint:   ck,
		}
	}
	anOpts := func(ck *core.CheckpointConfig) core.AnalysisOptions {
		return core.AnalysisOptions{
			LeakCheck:  sc.NeedsLeakCheck(),
			Workers:    workers,
			Checkpoint: ck,
		}
	}

	// Cold golden run: no checkpoints anywhere.
	m, err := kvm.New(sc.MustProgram())
	if err != nil {
		return err
	}
	coldRep, err := core.Reproduce(m, lifsOpts(nil, 0))
	if err != nil {
		return fmt.Errorf("cold reproduce: %w", err)
	}
	coldD, err := core.Analyze(m, coldRep, anOpts(nil))
	if err != nil {
		return fmt.Errorf("cold analyze: %w", err)
	}
	goldenChain := coldD.Chain.Format(sc.MustProgram())
	if want := scenarios.GoldenChains[sc.Name]; goldenChain != want {
		return fmt.Errorf("cold chain %q does not match the golden set %q", goldenChain, want)
	}

	dir, err := os.MkdirTemp("", "aitia-crash-resume-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := durable.OpenCheckpointStore(dir, false)
	if err != nil {
		return err
	}
	ck := &core.CheckpointConfig{Store: store, Every: every}

	// Interrupted run: the budget is half the cold cost, so the search
	// aborts mid-way having persisted at least one checkpoint.
	m2, err := kvm.New(sc.MustProgram())
	if err != nil {
		return err
	}
	truncated := coldRep.Stats.Schedules / 2
	if truncated < 1 {
		truncated = 1
	}
	if _, err := core.Reproduce(m2, lifsOpts(ck, truncated)); !core.IsNotReproduced(err) {
		return fmt.Errorf("truncated run (budget %d of %d): err = %v, want not-reproduced", truncated, coldRep.Stats.Schedules, err)
	}

	// Resume with the full budget: strictly fewer schedules, same answer.
	m3, err := kvm.New(sc.MustProgram())
	if err != nil {
		return err
	}
	rep, err := core.Reproduce(m3, lifsOpts(ck, 0))
	if err != nil {
		return fmt.Errorf("resumed reproduce: %w", err)
	}
	if !rep.Stats.Resumed {
		return fmt.Errorf("resumed run did not report Resumed")
	}
	if rep.Stats.Schedules >= coldRep.Stats.Schedules {
		return fmt.Errorf("resumed run executed %d schedules, cold run %d — nothing was saved",
			rep.Stats.Schedules, coldRep.Stats.Schedules)
	}
	if rep.Stats.Interleavings != coldRep.Stats.Interleavings {
		return fmt.Errorf("resumed interleaving count %d != cold %d", rep.Stats.Interleavings, coldRep.Stats.Interleavings)
	}

	// Analysis leg: cut the analysis at its first settled-flip
	// checkpoint via the OnSave seam, then resume it.
	ctx, cancel := context.WithCancel(context.Background())
	ckKill := &core.CheckpointConfig{Store: store, Every: every, OnSave: func(string) { cancel() }}
	aKill := anOpts(nil)
	aKill.Checkpoint = ckKill
	if _, err := core.AnalyzeContext(ctx, m3, rep, aKill); err == nil {
		// The whole analysis fit before the first checkpoint fired; that
		// still exercises the terminal-replay path below.
		fmt.Printf("note %-34s analysis completed before the kill point\n", sc.Name)
	}
	cancel()
	d, err := core.Analyze(m3, rep, anOpts(ck))
	if err != nil {
		return fmt.Errorf("resumed analyze: %w", err)
	}
	if chain := d.Chain.Format(sc.MustProgram()); chain != goldenChain {
		return fmt.Errorf("resumed chain %q != golden %q", chain, goldenChain)
	}
	if len(d.RootCause) != len(coldD.RootCause) || len(d.Benign) != len(coldD.Benign) {
		return fmt.Errorf("resumed verdicts diverge: %d/%d root-cause, %d/%d benign",
			len(d.RootCause), len(coldD.RootCause), len(d.Benign), len(coldD.Benign))
	}
	return nil
}

// runKillRecover is the process-level half of the crash-recovery CI
// gate: it spawns a real aitia-serve with a durable data dir, submits
// the scenario corpus, SIGKILLs the server mid-diagnosis, restarts it
// on the same data dir, and asserts every job reaches a terminal state
// with its golden chain. dataDir == "" uses a temp dir; a non-empty one
// is left in place on failure so CI can upload the journal as an
// artifact (the server log is written there either way).
func runKillRecover(list []*scenarios.Scenario, serveBin, dataDir string) (err error) {
	if _, serr := os.Stat(serveBin); serr != nil {
		return fmt.Errorf("kill-recover: serve binary: %w", serr)
	}
	cleanup := false
	if dataDir == "" {
		dataDir, err = os.MkdirTemp("", "aitia-kill-recover-*")
		if err != nil {
			return err
		}
		cleanup = true
	} else if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	defer func() {
		if err == nil && cleanup {
			os.RemoveAll(dataDir)
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "kill-recover: journal and server log left in %s\n", dataDir)
		}
	}()

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr
	logPath := filepath.Join(dataDir, "serve.log")

	// First incarnation: slow enough (1 worker) that most of the corpus
	// is still queued when the kill lands.
	srv, err := spawnServe(serveBin, addr, dataDir, logPath, 1)
	if err != nil {
		return err
	}
	killed := false
	defer func() {
		if !killed && srv.Process != nil {
			srv.Process.Kill()
			srv.Wait()
		}
	}()
	if err := waitHealthy(base, 15*time.Second); err != nil {
		return fmt.Errorf("first incarnation never became healthy: %w", err)
	}

	jobs := make(map[string]string, len(list)) // job ID -> scenario name
	for _, sc := range list {
		id, err := submitScenario(base, sc.Name)
		if err != nil {
			return fmt.Errorf("submitting %s: %w", sc.Name, err)
		}
		jobs[id] = sc.Name
	}
	fmt.Printf("kill-recover: submitted %d scenarios to %s\n", len(jobs), base)

	// Let the worker get mid-diagnosis, then SIGKILL: no drain, no
	// journal sync, exactly the crash the journal is for.
	if err := waitAnyRunning(base, 10*time.Second); err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	srv.Wait()
	killed = true
	fmt.Printf("kill-recover: SIGKILLed the server mid-diagnosis\n")

	// Second incarnation, same data dir, more workers to finish fast.
	srv2, err := spawnServe(serveBin, addr, dataDir, logPath, 4)
	if err != nil {
		return err
	}
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()
	if err := waitHealthy(base, 15*time.Second); err != nil {
		return fmt.Errorf("restarted incarnation never became healthy: %w", err)
	}

	recovered, err := metricValue(base, "aitia_jobs_recovered_total")
	if err != nil {
		return err
	}
	if recovered == 0 {
		return fmt.Errorf("restarted server recovered 0 jobs from the journal")
	}
	fmt.Printf("kill-recover: restarted server recovered %d jobs from the journal\n", recovered)

	// Every submitted job must reach a terminal state with its golden
	// chain — nothing lost, nothing wrong.
	deadline := time.Now().Add(3 * time.Minute)
	bad := 0
	resumed := 0
	for id, name := range jobs {
		st, err := waitTerminal(base, id, deadline)
		if err != nil {
			fmt.Printf("FAIL %-22s job %s: %v\n", name, id, err)
			bad++
			continue
		}
		if st.State != "done" {
			fmt.Printf("FAIL %-22s job %s: state %q (error %q), want done\n", name, id, st.State, st.Error)
			bad++
			continue
		}
		want := scenarios.GoldenChains[name]
		if st.Result == nil || st.Result.Chain != want {
			got := "<no result>"
			if st.Result != nil {
				got = st.Result.Chain
			}
			fmt.Printf("FAIL %-22s chain = %q\n     %-22s want    %q\n", name, got, "", want)
			bad++
			continue
		}
		if st.Result.Resumed {
			resumed++
		}
	}
	if bad > 0 {
		return fmt.Errorf("kill-recover: %d of %d jobs lost or diverged after the kill", bad, len(jobs))
	}
	fmt.Printf("kill-recover: all %d jobs reached their golden chain after SIGKILL + restart (%d resumed from a checkpoint)\n",
		len(jobs), resumed)
	return nil
}

func spawnServe(bin, addr, dataDir, logPath string, workers int) (*exec.Cmd, error) {
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer logf.Close()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-workers", fmt.Sprint(workers),
		"-checkpoint-every", "2",
		"-queue", "128",
	)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	return cmd, nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("no healthy response within %v", timeout)
}

// jobStatus mirrors the wire shape of service.Status closely enough for
// the gate's assertions.
type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Result *struct {
		Chain   string `json:"chain"`
		Resumed bool   `json:"resumed,omitempty"`
	} `json:"result,omitempty"`
}

func submitScenario(base, name string) (string, error) {
	body, _ := json.Marshal(map[string]any{"scenario": name})
	resp, err := http.Post(base+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("POST /v1/diagnose: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.ID, nil
}

func waitAnyRunning(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var list []jobStatus
		if err := getJSON(base+"/v1/jobs", &list); err == nil {
			for _, st := range list {
				if st.State == "running" {
					return nil
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("no job entered running within %v", timeout)
}

func waitTerminal(base, id string, deadline time.Time) (*jobStatus, error) {
	for time.Now().Before(deadline) {
		var st jobStatus
		if err := getJSON(base+"/v1/jobs/"+id, &st); err != nil {
			return nil, err
		}
		switch st.State {
		case "done", "failed", "canceled":
			return &st, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return nil, fmt.Errorf("not terminal by the deadline")
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// metricValue scrapes one counter from the Prometheus exposition.
func metricValue(base, name string) (int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
				return v, nil
			}
		}
	}
	return 0, fmt.Errorf("metric %s not in the exposition", name)
}

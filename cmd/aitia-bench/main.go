// Command aitia-bench regenerates the paper's evaluation artifacts from
// the scenario corpus: Table 1 (requirements matrix), Table 2 (CVE
// diagnoses), Table 3 (Syzkaller-bug diagnoses), the §5.2 conciseness
// statistics, the baseline comparison, and the Figure 5 search tree.
//
// Usage:
//
//	aitia-bench -all
//	aitia-bench -table 2
//	aitia-bench -conciseness -baselines
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"aitia/internal/core"
	"aitia/internal/eval"
	"aitia/internal/factory"
	"aitia/internal/faultinject"
	"aitia/internal/ingest"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/manager"
	"aitia/internal/obs"
	"aitia/internal/prior"
	"aitia/internal/report"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every artifact")
		table    = flag.Int("table", 0, "regenerate one table (1, 2 or 3)")
		concise  = flag.Bool("conciseness", false, "regenerate the §5.2 conciseness statistics")
		baseline = flag.Bool("baselines", false, "regenerate the baseline comparison (§5.2/§5.3)")
		figure5  = flag.Bool("figure5", false, "regenerate the Figure 5 search tree")
		ablation = flag.Bool("ablations", false, "run the design-choice ablations")
		repro    = flag.Bool("reproduction", false, "compare LIFS vs random scheduling for reproduction cost")
		chains   = flag.Bool("chains", false, "print every scenario's causality chain")
		lifs     = flag.Bool("lifs", false, "run the LIFS performance artifact (parallel search + snapshot strategy)")
		flips    = flag.Bool("flips", false, "run the learned flip-ordering artifact: diagnose the corpus cold (no prior) and warm (prior fed by the cold pass), comparing flip-test counts")
		out      = flag.String("out", "", "with -lifs, -flips or their -check gates: also write the artifact as JSON to this path")
		seed     = flag.Int64("seed", 1, "seed for the baselines' execution corpus")
		checkCh  = flag.Bool("check-chains", false, "re-diagnose the corpus and fail unless every chain matches the golden set (the CI corpus gate)")
		checkRep = flag.Bool("check-reports", false, "report-corpus gate: synthesize each scenario's crash report, re-diagnose from the report alone, and fail unless the chain is golden and the seeded search runs strictly fewer schedules than the blind baseline")
		repArt   = flag.String("report-artifacts", "", "with -check-reports: write each failing scenario's synthesized report and execution trace into this directory")
		faults   = flag.Bool("faults", false, "chaos gate: re-diagnose the corpus under deterministic fault injection (seeded by -seed) and fail unless serial and 8-worker runs agree and every chain is golden or Partial with a machine-readable reason")
		faultR   = flag.Float64("fault-rate", 0.1, "with -faults: per-decision fault probability")
		fleetG   = flag.Bool("fleet", false, "fleet chaos gate: diagnose the corpus on a 3-node in-process fleet under seeded lease-expiry, handoff-drop and node-death faults, plus a coordinator-partition and a dead-owner handoff case, and fail unless every chain is byte-identical to the serial run")
		fleetR   = flag.Float64("fleet-rate", 0.08, "with -fleet: per-decision fleet fault probability (node death fires at a quarter of it)")
		fleetArt = flag.String("fleet-artifacts", "", "with -fleet: write per-scenario outcomes and node statuses into this directory on failure")
		checkLF  = flag.String("check-lifs", "", "run the -lifs artifact and fail if schedule counts or speedups regress more than 25% against the committed baseline JSON at this path")
		checkFl  = flag.String("check-flips", "", "flip-regression gate: run the -flips artifact and fail unless every warm chain is byte-identical to cold, the warm pass skips at least 25% of flip tests, and flip counts stay within ±25% of the committed baseline JSON at this path")
		crashRes = flag.Bool("crash-resume", false, "crash-recovery gate, in-process half: interrupt checkpointed diagnoses mid-search and mid-analysis and fail unless they resume to the golden diagnosis with strictly fewer schedules")
		killRec  = flag.String("kill-recover", "", "crash-recovery gate, process half: path to an aitia-serve binary to spawn with a durable data dir, SIGKILL mid-diagnosis, restart, and fail unless every submitted job recovers to its golden chain")
		killDir  = flag.String("kill-data-dir", "", "with -kill-recover: use this data dir (left in place on failure for artifact upload); empty uses a temp dir")
		corpus   = flag.String("corpus", "", "scenario subset for the corpus gates (all, handbuilt, generated, or a group name); empty picks each gate's default — handbuilt for the perf and resilience gates, all for the correctness gates")
		checkMx  = flag.Bool("check-matrix", false, "bug-class coverage gate: classify the corpus into the failure-class × interleaving-structure matrix and fail unless every failure class keeps at least -matrix-min representatives")
		matrixMn = flag.Int("matrix-min", 3, "with -check-matrix: minimum representatives per failure class")
		trace    = flag.String("trace", "", "write an execution trace of diagnosing -trace-scenario as Chrome trace-event JSON to this path")
		traceSc  = flag.String("trace-scenario", "cve-2017-15649", "scenario to diagnose for -trace")
		traceW   = flag.Int("trace-workers", runtime.GOMAXPROCS(0), "worker count for the -trace diagnosis")
	)
	flag.Parse()
	if !*all && *table == 0 && !*concise && !*baseline && !*figure5 && !*chains && !*ablation && !*repro && !*lifs && !*flips && !*checkCh && !*checkRep && !*checkMx && !*faults && !*fleetG && !*crashRes && *killRec == "" && *checkLF == "" && *checkFl == "" && *trace == "" {
		*all = true
	}

	if *all || *table == 2 {
		check(printTable2())
	}
	if *all || *table == 3 {
		check(printTable3())
	}
	if *all || *concise {
		check(printConciseness())
	}
	if *all || *baseline || *table == 1 {
		check(printBaselines(*seed, *all || *table == 1))
	}
	if *all || *figure5 {
		check(printFigure5())
	}
	if *all || *ablation {
		check(printAblations())
	}
	if *all || *repro {
		check(printReproduction(*seed))
	}
	if *chains {
		check(printChains())
	}
	if *lifs {
		list, _ := gateCorpus(*corpus, "handbuilt")
		_, err := printLIFS(list, *out)
		check(err)
	}
	if *flips {
		list, _ := gateCorpus(*corpus, "handbuilt")
		_, err := printFlips(list, *out)
		check(err)
	}
	if *checkCh {
		list, name := gateCorpus(*corpus, "all")
		check(checkChains(list, name))
	}
	if *checkRep {
		list, name := gateCorpus(*corpus, "all")
		check(checkReports(list, name, *repArt))
	}
	if *checkMx {
		list, name := gateCorpus(*corpus, "all")
		check(checkMatrix(list, name, *matrixMn))
	}
	if *faults {
		// With -faults, -trace names the failure artifact runChaos writes
		// for the first violating scenario, not a standalone trace run.
		list, name := gateCorpus(*corpus, "handbuilt")
		check(runChaos(*seed, *faultR, *trace, list, name))
	}
	if *fleetG {
		list, name := gateCorpus(*corpus, "handbuilt")
		check(runFleet(*seed, *fleetR, *fleetArt, list, name))
	}
	if *crashRes {
		check(runCrashResume())
	}
	if *killRec != "" {
		list, _ := gateCorpus(*corpus, "handbuilt")
		check(runKillRecover(list, *killRec, *killDir))
	}
	if *checkLF != "" {
		list, _ := gateCorpus(*corpus, "handbuilt")
		check(checkLIFSArtifact(list, *checkLF, *out))
	}
	if *checkFl != "" {
		list, _ := gateCorpus(*corpus, "handbuilt")
		check(checkFlipsArtifact(list, *checkFl, *out))
	}
	if *trace != "" && !*faults {
		check(writeTrace(*trace, *traceSc, *traceW))
	}
}

// gateCorpus resolves the -corpus flag for one gate: an explicit value
// wins, otherwise the gate's default applies. The perf and resilience
// gates default to "handbuilt" so the growing generated corpus never
// shifts their committed baselines; the correctness gates default to
// "all" so every emitted scenario is held to its pinned ground truth.
func gateCorpus(flagVal, def string) ([]*scenarios.Scenario, string) {
	name := flagVal
	if name == "" {
		name = def
	}
	list, err := scenarios.Subset(name)
	check(err)
	if len(list) == 0 {
		check(fmt.Errorf("corpus subset %q is empty", name))
	}
	return list, name
}

// checkMatrix is the bug-class coverage CI gate: it classifies the
// selected corpus into the failure-class × interleaving-structure matrix
// (the Tables 2–3 bug taxonomy) and fails unless every failure class
// keeps at least minPer representatives. The full matrix prints either
// way, so a failing run shows exactly which cells went empty.
func checkMatrix(list []*scenarios.Scenario, name string, minPer int) error {
	m := factory.NewMatrix()
	for _, sc := range list {
		m.AddScenario(sc)
	}
	fmt.Printf("bug-class matrix (%s corpus, %d scenarios):\n%s", name, m.Total(), m)
	if missing := m.MissingFailure(minPer); len(missing) > 0 {
		return fmt.Errorf("check-matrix: failure classes below %d representatives in the %s corpus: %s",
			minPer, name, strings.Join(missing, ", "))
	}
	fmt.Printf("check-matrix: every failure class has >= %d representatives across %d scenarios\n",
		minPer, len(list))
	return nil
}

// checkChains is the CI corpus gate: it re-diagnoses every scenario of
// the selected subset and compares the causality chain against
// scenarios.GoldenChains, independently of `go test` — an edited or
// skipped golden test cannot hide a regression from this path.
func checkChains(list []*scenarios.Scenario, name string) error {
	rows, err := eval.Run(list)
	if err != nil {
		return err
	}
	// Only the full corpus can account for every golden chain; a subset
	// run still requires a golden for each of its own scenarios below.
	if name == "all" && len(rows) != len(scenarios.GoldenChains) {
		return fmt.Errorf("check-chains: corpus has %d scenarios but %d golden chains — regenerate with -chains and update internal/scenarios/golden.go",
			len(rows), len(scenarios.GoldenChains))
	}
	bad := 0
	for _, r := range rows {
		want, ok := scenarios.GoldenChains[r.Scenario.Name]
		if !ok {
			fmt.Printf("FAIL %-22s no golden chain\n", r.Scenario.Name)
			bad++
			continue
		}
		if r.Chain != want {
			fmt.Printf("FAIL %-22s chain = %q\n     %-22s want    %q\n", r.Scenario.Name, r.Chain, "", want)
			bad++
			continue
		}
		fmt.Printf("ok   %-22s %s\n", r.Scenario.Name, r.Chain)
	}
	if bad > 0 {
		return fmt.Errorf("check-chains: %d of %d scenarios diverge from the golden chains", bad, len(rows))
	}
	fmt.Printf("check-chains: all %d scenario chains match the golden set\n", len(rows))
	return nil
}

// checkReports is the report-corpus CI gate: for every scenario it
// reproduces the failure blind, renders the failing run as a KCSAN-style
// crash report, then diagnoses from that report text alone. The gate
// fails unless the report-driven chain matches the golden set AND the
// report-seeded search executes strictly fewer schedules than the blind
// baseline — the whole point of constraining LIFS with report suspects.
// When artifactDir is set, each violating scenario leaves its report and
// an execution trace of the report-driven run there for upload.
// Generated scenarios whose manifest recorded ReportOK=false at emission
// are skipped with a visible line rather than failed.
func checkReports(list []*scenarios.Scenario, name, artifactDir string) error {
	bad, checked := 0, 0
	for _, sc := range list {
		if sc.GenInfo != nil && !sc.GenInfo.ReportOK {
			fmt.Printf("skip %-22s synthesized report does not round-trip (recorded at emission)\n", sc.Name)
			continue
		}
		checked++
		prog := sc.MustProgram()
		m, err := kvm.New(prog)
		if err != nil {
			return err
		}
		blind, err := core.Reproduce(m, core.LIFSOptions{
			WantKind:  sc.WantKind,
			WantInstr: sc.WantInstr(),
			LeakCheck: sc.NeedsLeakCheck(),
		})
		if err != nil {
			return fmt.Errorf("check-reports: %s: blind baseline: %w", sc.Name, err)
		}
		text, err := ingest.Synthesize(prog, blind.Run, blind.Races)
		if err != nil {
			return fmt.Errorf("check-reports: %s: synthesize: %w", sc.Name, err)
		}
		rpt, err := ingest.Parse(text)
		if err != nil {
			return fmt.Errorf("check-reports: %s: synthesized report does not parse: %w", sc.Name, err)
		}

		tr := obs.New()
		mgr, err := manager.New(prog, manager.Options{Tracer: tr})
		if err != nil {
			return err
		}
		mres, err := mgr.DiagnoseReport(context.Background(), rpt)
		fail := func(format string, args ...any) {
			fmt.Printf("FAIL %-22s %s\n", sc.Name, fmt.Sprintf(format, args...))
			bad++
			if werr := writeReportArtifacts(artifactDir, sc.Name, text, tr); werr != nil {
				fmt.Fprintf(os.Stderr, "check-reports: could not write artifacts for %s: %v\n", sc.Name, werr)
			}
		}
		switch {
		case err != nil:
			fail("report-driven diagnosis errored: %v", err)
		case mres.Resolution.Degraded():
			fail("synthesized report resolved degraded: %v", mres.Resolution.Partial)
		default:
			chain := mres.Diagnosis.Chain.Format(prog)
			seeded := mres.Reproduction.Stats.Schedules
			if want := scenarios.GoldenChains[sc.Name]; chain != want {
				fail("chain = %q\n     %-22s want    %q", chain, "", want)
			} else if seeded >= blind.Stats.Schedules {
				fail("seeded search ran %d schedules, blind baseline %d — want strictly fewer", seeded, blind.Stats.Schedules)
			} else {
				fmt.Printf("ok   %-22s %d -> %d schedules  %s\n", sc.Name, blind.Stats.Schedules, seeded, chain)
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("check-reports: %d of %d scenarios fail the report-driven gate", bad, checked)
	}
	fmt.Printf("check-reports: all %d scenarios (%s corpus) diagnose from their crash report alone, each with fewer schedules than blind\n",
		checked, name)
	return nil
}

// writeReportArtifacts dumps a violating scenario's synthesized report
// and the Chrome trace of its report-driven diagnosis, so the CI gate
// leaves a postmortem. A nil/empty dir disables artifacts.
func writeReportArtifacts(dir, name, reportText string, tr *obs.Tracer) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".report.txt"), []byte(reportText), 0o644); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".trace.json"), buf.Bytes(), 0o644)
}

// runChaos is the chaos CI gate: every corpus scenario is re-diagnosed
// under a deterministic fault plan, serially and with 8 workers. The
// run passes when, per scenario, both worker counts produce identical
// results AND the outcome is one of the three sanctioned shapes:
// the golden chain, a Partial diagnosis with a machine-readable reason,
// or a classified retry exhaustion (which a service deployment would
// requeue). Anything else — divergent chains, unclassified errors, a
// silently wrong chain — fails the gate.
func runChaos(seed int64, rate float64, tracePath string, list []*scenarios.Scenario, name string) error {
	retry := faultinject.RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
	}
	pipeline := func(sc *scenarios.Scenario, workers int, tr *obs.Tracer) (*core.Diagnosis, string, error) {
		plan := faultinject.NewPlan(seed, rate)
		m, err := kvm.New(sc.MustProgram())
		if err != nil {
			return nil, "", err
		}
		rep, err := core.Reproduce(m, core.LIFSOptions{
			WantKind:  sc.WantKind,
			WantInstr: sc.WantInstr(),
			LeakCheck: sc.NeedsLeakCheck(),
			Workers:   workers,
			Fault:     plan,
			Retry:     retry,
			Tracer:    tr,
		})
		if err != nil {
			return nil, "", err
		}
		d, err := core.Analyze(m, rep, core.AnalysisOptions{
			LeakCheck: sc.NeedsLeakCheck(),
			Workers:   workers,
			Fault:     plan,
			Retry:     retry,
			Tracer:    tr,
		})
		if err != nil {
			return nil, "", err
		}
		return d, d.Chain.Format(sc.MustProgram()), nil
	}

	fmt.Printf("chaos gate: fault seed %d, rate %g, retry budget %d\n", seed, rate, retry.MaxAttempts)
	bad := 0
	var firstBad *scenarios.Scenario
	violated := func(sc *scenarios.Scenario) {
		bad++
		if firstBad == nil {
			firstBad = sc
		}
	}
	for _, sc := range list {
		ds, cs, serr := pipeline(sc, 1, nil)
		dp, cp, perr := pipeline(sc, 8, nil)
		switch {
		case serr != nil || perr != nil:
			if serr != nil && perr != nil &&
				errors.Is(serr, faultinject.ErrExhausted) && errors.Is(perr, faultinject.ErrExhausted) {
				fmt.Printf("degr %-22s classified exhaustion on both (requeueable): %v\n", sc.Name, serr)
				continue
			}
			fmt.Printf("FAIL %-22s errors diverge or unclassified:\n     serial:   %v\n     workers8: %v\n", sc.Name, serr, perr)
			violated(sc)
		case cs != cp || ds.Partial != dp.Partial || ds.PartialReason != dp.PartialReason:
			fmt.Printf("FAIL %-22s serial and 8-worker runs diverge:\n     serial:   %q partial=%v (%s)\n     workers8: %q partial=%v (%s)\n",
				sc.Name, cs, ds.Partial, ds.PartialReason, cp, dp.Partial, dp.PartialReason)
			violated(sc)
		case ds.Partial:
			if ds.PartialReason == "" {
				fmt.Printf("FAIL %-22s Partial without a machine-readable reason\n", sc.Name)
				violated(sc)
				continue
			}
			fmt.Printf("part %-22s %q (%d unknown, reason %s)\n", sc.Name, cs, len(ds.Unknown), ds.PartialReason)
		default:
			if want := scenarios.GoldenChains[sc.Name]; cs != want {
				fmt.Printf("FAIL %-22s chain = %q\n     %-22s want    %q\n", sc.Name, cs, "", want)
				violated(sc)
				continue
			}
			fmt.Printf("ok   %-22s %s\n", sc.Name, cs)
		}
	}
	if bad > 0 {
		if tracePath != "" && firstBad != nil {
			if terr := writeChaosTrace(tracePath, firstBad, pipeline); terr != nil {
				fmt.Fprintf(os.Stderr, "faults: could not write failure trace: %v\n", terr)
			}
		}
		return fmt.Errorf("faults: %d scenarios violated the chaos invariant (seed %d, rate %g)", bad, seed, rate)
	}
	fmt.Printf("faults: all %d %s scenarios deterministic under injection (seed %d, rate %g)\n",
		len(list), name, seed, rate)
	return nil
}

// writeChaosTrace re-runs the first violating scenario's faulted serial
// pipeline with tracing enabled and dumps the spans — fault injections,
// retries and all — as a Chrome trace, so a failed chaos gate leaves a
// postmortem artifact. The rerun's own error is irrelevant (the gate has
// already failed); whatever spans were collected get written.
func writeChaosTrace(outPath string, sc *scenarios.Scenario, pipeline func(*scenarios.Scenario, int, *obs.Tracer) (*core.Diagnosis, string, error)) error {
	tr := obs.New()
	_, _, rerr := pipeline(sc, 1, tr)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "faults: wrote failure trace of %s to %s (%d spans, rerun error: %v)\n",
		sc.Name, outPath, len(tr.Events()), rerr)
	return nil
}

// writeTrace diagnoses one scenario with tracing enabled and exports the
// trace as Chrome trace-event JSON, validating it on the way out.
func writeTrace(outPath, name string, workers int) error {
	sc, ok := scenarios.ByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", name)
	}
	m, err := kvm.New(sc.MustProgram())
	if err != nil {
		return err
	}
	tr := obs.New()
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
		Workers:   workers,
		Tracer:    tr,
	})
	if err != nil {
		return err
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{
		LeakCheck: sc.NeedsLeakCheck(),
		Workers:   workers,
		Tracer:    tr,
	})
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return err
	}
	if err := obs.ValidateChrome(buf.Bytes()); err != nil {
		return fmt.Errorf("exported trace does not validate: %w", err)
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}

	events := tr.Events()
	fmt.Printf("wrote %s: %d spans from diagnosing %s with %d workers (chain: %s)\n",
		outPath, len(events), sc.Name, workers, d.Chain.Format(sc.MustProgram()))
	t := report.Table{Title: "Span summary (open the JSON in chrome://tracing or https://ui.perfetto.dev)"}
	t.Add("Category", "Span", "Count", "Total")
	for _, st := range obs.Summarize(events) {
		t.Add(st.Cat, st.Name, fmt.Sprint(st.Count), fmt.Sprint(time.Duration(st.Total).Round(time.Microsecond)))
	}
	t.Write(os.Stdout)
	return nil
}

// The JSON shape of the -lifs performance artifact (BENCH_lifs.json).
type lifsArtifact struct {
	Generated  string            `json:"generated"`
	CPUs       int               `json:"cpus"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Note       string            `json:"note"`
	Parallel   []lifsParallelRow `json:"parallel"`
	Snapshot   []lifsSnapshotRow `json:"snapshot"`
	Replay     []lifsReplayRow   `json:"replay"`
}

type lifsParallelRow struct {
	Scenario  string  `json:"scenario"`
	Workers   int     `json:"workers"`
	ElapsedNS int64   `json:"elapsed_ns"`
	Schedules int     `json:"schedules"`
	Speedup   float64 `json:"speedup_vs_serial"`
	// Instruction-level work of the measured search: total executed,
	// executed per schedule, and the share spent re-executing known
	// prefixes. In parallel runs ReplayedInstrs depends on how tasks land
	// on workers (each worker primes its own pin), so only the serial
	// rows are machine-comparable.
	ExecutedInstrs    uint64  `json:"executed_instrs"`
	InstrsPerSchedule float64 `json:"instrs_per_schedule"`
	ReplayedInstrs    uint64  `json:"replayed_instrs"`
}

// lifsReplayRow is one corpus scenario's serial diagnosis (Reproduce +
// Analyze) measured with the prefix cache on and off. The counts are
// deterministic, machine-portable, and the -check-lifs replay gate runs
// on their corpus totals.
type lifsReplayRow struct {
	Scenario    string `json:"scenario"`
	ReplayedOff uint64 `json:"replayed_instrs_off"`
	ReplayedOn  uint64 `json:"replayed_instrs_on"`
	SavedInstrs uint64 `json:"saved_instrs"`
	PrefixHits  int    `json:"prefix_hits"`
	PinnedBytes uint64 `json:"pinned_bytes"`
}

type lifsSnapshotRow struct {
	State          string  `json:"state"`
	Globals        int     `json:"globals"`
	CoWNSPerCycle  int64   `json:"cow_ns_per_cycle"`
	DeepNSPerCycle int64   `json:"deep_ns_per_cycle"`
	Speedup        float64 `json:"speedup"`
}

// printLIFS measures the two perf mechanisms of the search engine — worker
// sharding (LIFSOptions.Workers) and copy-on-write snapshots — and writes
// the numbers to stdout and, with -out, to a JSON artifact. All timings are
// best-of-3 to damp scheduler noise. The measured artifact is returned so
// -check-lifs can compare it against a committed baseline. The replay
// section measures the scenarios in list (the -corpus subset, hand-built
// by default so the committed baseline is insensitive to corpus growth).
func printLIFS(list []*scenarios.Scenario, outPath string) (*lifsArtifact, error) {
	art := lifsArtifact{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "parallel speedup requires spare CPUs: on a single-CPU runner the " +
			"workers serialize and speedup_vs_serial bounds the sharding overhead " +
			"instead; the snapshot comparison is single-threaded and unaffected",
	}

	// Parallel search: a permutation-heavy stress scenario with uniform
	// top-level branch mass, plus the hardest corpus reproduction.
	stress, err := eval.ParallelStressProgram(7, 40)
	if err != nil {
		return nil, err
	}
	syz, ok := scenarios.ByName("syz08-j1939-refcount")
	if !ok {
		return nil, fmt.Errorf("scenario syz08-j1939-refcount missing from corpus")
	}
	cases := []struct {
		name string
		prog *kir.Program
		opts core.LIFSOptions
	}{
		{"stress-7x40", stress, core.LIFSOptions{WantKind: sanitizer.KindNullDeref, MaxSchedules: 1 << 30}},
		{syz.Name, syz.MustProgram(), core.LIFSOptions{WantKind: syz.WantKind, WantInstr: syz.WantInstr()}},
	}
	t := report.Table{Title: "Parallel LIFS search (best of 3 runs)"}
	t.Add("Scenario", "Workers", "Elapsed", "# sched", "Speedup", "instrs/sched", "replayed")
	for _, c := range cases {
		var serial time.Duration
		for _, workers := range []int{1, 2, 4, 8} {
			best := time.Duration(0)
			scheds := 0
			var executed, replayed uint64
			for rep := 0; rep < 3; rep++ {
				m, err := kvm.New(c.prog)
				if err != nil {
					return nil, err
				}
				opts := c.opts
				opts.Workers = workers
				start := time.Now()
				r, err := core.Reproduce(m, opts)
				if err != nil {
					return nil, fmt.Errorf("%s workers=%d: %w", c.name, workers, err)
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
				scheds = r.Stats.Schedules
				executed = r.Stats.ExecutedInstrs
				replayed = r.Stats.ReplayedInstrs
			}
			if workers == 1 {
				serial = best
			}
			speedup := float64(serial) / float64(best)
			perSched := 0.0
			if scheds > 0 {
				perSched = float64(executed) / float64(scheds)
			}
			art.Parallel = append(art.Parallel, lifsParallelRow{
				Scenario: c.name, Workers: workers,
				ElapsedNS: best.Nanoseconds(), Schedules: scheds,
				Speedup:           speedup,
				ExecutedInstrs:    executed,
				InstrsPerSchedule: perSched,
				ReplayedInstrs:    replayed,
			})
			t.Add(c.name, fmt.Sprint(workers), fmt.Sprint(best.Round(10_000)),
				fmt.Sprint(scheds), fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.1f", perSched), fmt.Sprint(replayed))
		}
	}
	t.Write(os.Stdout)
	fmt.Printf("  (%d CPUs, GOMAXPROCS %d — %s)\n\n", art.CPUs, art.GOMAXPROCS, art.Note)

	// Incremental replay: the whole corpus diagnosed serially with the
	// prefix cache on and off. The counts are deterministic; golden-chain
	// equality across both modes is asserted here, so a cache bug cannot
	// ship a "fast" artifact with wrong diagnoses.
	rows, err := measureReplay(list)
	if err != nil {
		return nil, err
	}
	art.Replay = rows
	var offTot, onTot uint64
	rt := report.Table{Title: "Incremental replay: prefix cache off vs on (serial diagnosis, corpus)"}
	rt.Add("Scenario", "replayed off", "replayed on", "saved", "hits", "pinned B")
	for _, r := range rows {
		offTot += r.ReplayedOff
		onTot += r.ReplayedOn
		rt.Add(r.Scenario, fmt.Sprint(r.ReplayedOff), fmt.Sprint(r.ReplayedOn),
			fmt.Sprint(r.SavedInstrs), fmt.Sprint(r.PrefixHits), fmt.Sprint(r.PinnedBytes))
	}
	rt.Write(os.Stdout)
	fmt.Printf("  (corpus replayed instructions: %d off, %d on — %.1fx reduction)\n\n",
		offTot, onTot, replayRatio(offTot, onTot))

	// Snapshot strategy: checkpoint / 32-step burst / revert cycles. Deep
	// copy scales with total state width, the journal with bytes dirtied.
	wide, err := eval.WideStateProgram(4096)
	if err != nil {
		return nil, err
	}
	snapCases := []struct {
		name    string
		globals int
		prog    *kir.Program
	}{
		{syz.Name, 0, syz.MustProgram()},
		{"wide-4096", 4096, wide},
	}
	const cycles, burst = 3000, 32
	st := report.Table{Title: "Snapshot strategy: copy-on-write journal vs deep copy (per checkpoint/burst/revert cycle)"}
	st.Add("State", "CoW", "Deep copy", "Speedup")
	for _, c := range snapCases {
		cow, err := snapshotCycle(c.prog, cycles, burst, false)
		if err != nil {
			return nil, err
		}
		deep, err := snapshotCycle(c.prog, cycles, burst, true)
		if err != nil {
			return nil, err
		}
		speedup := float64(deep) / float64(cow)
		art.Snapshot = append(art.Snapshot, lifsSnapshotRow{
			State: c.name, Globals: c.globals,
			CoWNSPerCycle: cow.Nanoseconds(), DeepNSPerCycle: deep.Nanoseconds(),
			Speedup: speedup,
		})
		st.Add(c.name, fmt.Sprint(cow), fmt.Sprint(deep), fmt.Sprintf("%.1fx", speedup))
	}
	st.Write(os.Stdout)
	fmt.Printf("  (%d cycles of %d steps each; deep-copy cost grows with state width, CoW with bytes dirtied)\n\n",
		cycles, burst)

	if outPath != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return &art, nil
}

// measureReplay diagnoses every corpus scenario serially with the prefix
// cache disabled and enabled, returning the per-scenario replay counters.
// Both modes must produce the scenario's golden chain and identical
// schedule counts — the cache is a work optimization, never a result
// change — so a divergence fails the measurement itself.
func measureReplay(list []*scenarios.Scenario) ([]lifsReplayRow, error) {
	var rows []lifsReplayRow
	for _, sc := range list {
		var replayed [2]uint64
		var chains [2]string
		var scheds [2]int
		row := lifsReplayRow{Scenario: sc.Name}
		for i, disable := range []bool{true, false} {
			m, err := kvm.New(sc.MustProgram())
			if err != nil {
				return nil, err
			}
			rep, err := core.Reproduce(m, core.LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: sc.WantInstr(),
				LeakCheck: sc.NeedsLeakCheck(),
				Prefix:    core.PrefixConfig{Disable: disable},
			})
			if err != nil {
				return nil, fmt.Errorf("replay-measure %s (cache=%v): %w", sc.Name, !disable, err)
			}
			d, err := core.Analyze(m, rep, core.AnalysisOptions{
				LeakCheck: sc.NeedsLeakCheck(),
				Prefix:    core.PrefixConfig{Disable: disable},
			})
			if err != nil {
				return nil, fmt.Errorf("replay-measure %s analyze (cache=%v): %w", sc.Name, !disable, err)
			}
			replayed[i] = rep.Stats.ReplayedInstrs + d.Stats.ReplayedInstrs
			chains[i] = d.Chain.Format(sc.MustProgram())
			scheds[i] = rep.Stats.Schedules
			if !disable {
				row.SavedInstrs = rep.Stats.SavedInstrs + d.Stats.SavedInstrs
				row.PrefixHits = rep.Stats.PrefixHits + d.Stats.PrefixHits
				row.PinnedBytes = rep.Stats.PinnedBytes
				if d.Stats.PinnedBytes > row.PinnedBytes {
					row.PinnedBytes = d.Stats.PinnedBytes
				}
			}
		}
		if chains[0] != chains[1] {
			return nil, fmt.Errorf("replay-measure %s: chain differs with the cache on (%q) vs off (%q)",
				sc.Name, chains[1], chains[0])
		}
		if want, ok := scenarios.GoldenChains[sc.Name]; ok && chains[0] != want {
			return nil, fmt.Errorf("replay-measure %s: chain %q does not match the golden %q", sc.Name, chains[0], want)
		}
		if scheds[0] != scheds[1] {
			return nil, fmt.Errorf("replay-measure %s: schedule count differs with the cache on (%d) vs off (%d)",
				sc.Name, scheds[1], scheds[0])
		}
		row.ReplayedOff, row.ReplayedOn = replayed[0], replayed[1]
		rows = append(rows, row)
	}
	return rows, nil
}

// replayRatio is off/on with a zero-safe denominator.
func replayRatio(off, on uint64) float64 {
	if on == 0 {
		on = 1
	}
	return float64(off) / float64(on)
}

// checkLIFSArtifact is the bench-regression CI gate: it re-measures the
// -lifs artifact and compares it against the committed baseline at
// baselinePath. Wall-clock times do not transfer between machines, so
// the gate checks machine-portable quantities only: per-(scenario,
// workers) schedule counts within ±25%, and parallel/snapshot speedup
// ratios one-sided (a regression of more than 25% fails; being faster
// never does). Parallel speedups are skipped when this machine has
// fewer CPUs than the baseline machine. With -out, the fresh artifact
// is written there so CI can upload it as the new candidate baseline.
func checkLIFSArtifact(list []*scenarios.Scenario, baselinePath, outPath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("check-lifs: %w", err)
	}
	var base lifsArtifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("check-lifs: parsing %s: %w", baselinePath, err)
	}
	art, err := printLIFS(list, outPath)
	if err != nil {
		return err
	}

	const tol = 0.25
	bad := 0
	fail := func(format string, args ...any) {
		fmt.Printf("FAIL "+format+"\n", args...)
		bad++
	}

	parallel := make(map[string]lifsParallelRow)
	for _, r := range base.Parallel {
		parallel[fmt.Sprintf("%s/w%d", r.Scenario, r.Workers)] = r
	}
	compareSpeedups := runtime.NumCPU() >= base.CPUs
	if !compareSpeedups {
		fmt.Printf("check-lifs: %d CPUs here vs %d in the baseline — parallel speedups not comparable, checking schedule counts only\n",
			runtime.NumCPU(), base.CPUs)
	}
	for _, r := range art.Parallel {
		key := fmt.Sprintf("%s/w%d", r.Scenario, r.Workers)
		b, ok := parallel[key]
		if !ok {
			fail("%-28s not in baseline %s — regenerate it with -lifs -out", key, baselinePath)
			continue
		}
		lo, hi := float64(b.Schedules)*(1-tol), float64(b.Schedules)*(1+tol)
		if s := float64(r.Schedules); s < lo || s > hi {
			fail("%-28s schedules = %d, baseline %d (±25%%: %.0f..%.0f) — the search explores a different amount of work",
				key, r.Schedules, b.Schedules, lo, hi)
		}
		if compareSpeedups && r.Speedup < b.Speedup*(1-tol) {
			fail("%-28s speedup = %.2fx, baseline %.2fx (floor %.2fx)", key, r.Speedup, b.Speedup, b.Speedup*(1-tol))
		}
	}

	snapshot := make(map[string]lifsSnapshotRow)
	for _, r := range base.Snapshot {
		snapshot[r.State] = r
	}
	for _, r := range art.Snapshot {
		b, ok := snapshot[r.State]
		if !ok {
			fail("snapshot/%-19s not in baseline %s — regenerate it with -lifs -out", r.State, baselinePath)
			continue
		}
		// The CoW-vs-deep ratio is single-threaded and machine-stable.
		if r.Speedup < b.Speedup*(1-tol) {
			fail("snapshot/%-19s CoW speedup = %.1fx, baseline %.1fx (floor %.1fx)",
				r.State, r.Speedup, b.Speedup, b.Speedup*(1-tol))
		}
	}

	// Replay gate: the prefix cache must keep earning its keep. The
	// measured counts are deterministic and machine-portable, so the
	// corpus totals carry a hard reduction floor plus a tolerance band
	// against the baseline (improvements always pass; measureReplay has
	// already asserted golden chains and cache-on/off schedule equality).
	if len(base.Replay) == 0 {
		fail("replay section missing from baseline %s — regenerate it with -lifs -out", baselinePath)
	} else {
		var baseOn, baseHits uint64
		for _, r := range base.Replay {
			baseOn += r.ReplayedOn
			baseHits += uint64(r.PrefixHits)
		}
		var freshOff, freshOn, freshHits uint64
		for _, r := range art.Replay {
			freshOff += r.ReplayedOff
			freshOn += r.ReplayedOn
			freshHits += uint64(r.PrefixHits)
		}
		replayBad := bad
		const minReplayReduction = 5.0
		if ratio := replayRatio(freshOff, freshOn); ratio < minReplayReduction {
			fail("replay reduction = %.1fx (corpus replayed %d off, %d on), floor %.0fx — the prefix cache stopped paying off",
				ratio, freshOff, freshOn, minReplayReduction)
		}
		if ceil := float64(baseOn) * (1 + tol); float64(freshOn) > ceil {
			fail("replayed instructions (cache on) = %d, baseline %d (ceiling +25%%: %.0f) — more prefix work is being re-executed",
				freshOn, baseOn, ceil)
		}
		lo, hi := float64(baseHits)*(1-tol), float64(baseHits)*(1+tol)
		if h := float64(freshHits); h < lo || h > hi {
			fail("prefix hits = %d, baseline %d (±25%%: %.0f..%.0f) — the cache hit rate changed structurally",
				freshHits, baseHits, lo, hi)
		}
		// The checks above compare corpus totals; name the scenarios that
		// moved so the CI log pinpoints the regression without a local rerun.
		if bad > replayBad {
			printReplayRows(base.Replay, art.Replay)
		}
	}

	if bad > 0 {
		where := ""
		if outPath != "" {
			where = fmt.Sprintf(" (fresh artifact written to %s)", outPath)
		}
		return fmt.Errorf("check-lifs: %d regressions against %s%s", bad, baselinePath, where)
	}
	fmt.Printf("check-lifs: no regression against %s (tolerance ±25%%, replay floor 5x)\n", baselinePath)
	return nil
}

// printReplayRows shows each scenario's replay counters next to the
// baseline's when a corpus-total replay check fails, marking the rows
// that moved, so the offending scenarios are visible in the CI log.
func printReplayRows(baseRows, freshRows []lifsReplayRow) {
	base := make(map[string]lifsReplayRow, len(baseRows))
	for _, r := range baseRows {
		base[r.Scenario] = r
	}
	t := report.Table{Title: "  per-scenario replay counters (fresh vs baseline)"}
	t.Add("Scenario", "replayed on", "base", "hits", "base")
	for _, r := range freshRows {
		b := base[r.Scenario]
		name := r.Scenario
		if r.ReplayedOn != b.ReplayedOn || r.PrefixHits != b.PrefixHits {
			name = "! " + name
		}
		t.Add(name, fmt.Sprint(r.ReplayedOn), fmt.Sprint(b.ReplayedOn),
			fmt.Sprint(r.PrefixHits), fmt.Sprint(b.PrefixHits))
	}
	t.Write(os.Stdout)
}

// The JSON shape of the -flips learned-ordering artifact (BENCH_flips.json).
type flipsArtifact struct {
	Generated   string     `json:"generated"`
	Note        string     `json:"note"`
	PriorPairs  int        `json:"prior_pairs"`
	ColdFlips   int        `json:"cold_flips_total"`
	WarmFlips   int        `json:"warm_flips_total"`
	WarmSkipped int        `json:"warm_skipped_total"`
	Reduction   float64    `json:"reduction"`
	Scenarios   []flipsRow `json:"scenarios"`
}

// flipsRow is one corpus scenario diagnosed cold (no prior, the exact
// fixed backward order) and warm (ranked by a prior fed with the whole
// corpus' cold verdicts). The counts are deterministic and
// machine-portable; the chain is asserted byte-identical across all
// passes before a row is emitted.
type flipsRow struct {
	Scenario    string `json:"scenario"`
	TestSet     int    `json:"test_set"`
	ColdFlips   int    `json:"cold_flips"`
	WarmFlips   int    `json:"warm_flips"`
	WarmSkipped int    `json:"warm_skipped"`
	PriorHits   int    `json:"prior_hits"`
	Chain       string `json:"chain"`
}

// diagnoseFlips reproduces one scenario serially and analyzes it with
// the given worker count and optional flip ranker.
func diagnoseFlips(sc *scenarios.Scenario, ranker core.FlipRanker, workers int) (*core.Diagnosis, *kir.Program, error) {
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		return nil, nil, err
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
	})
	if err != nil {
		return nil, nil, err
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{
		LeakCheck: sc.NeedsLeakCheck(),
		Workers:   workers,
		Ranker:    ranker,
	})
	if err != nil {
		return nil, nil, err
	}
	return d, prog, nil
}

// measureFlips runs the cold and warm corpus passes behind the -flips
// artifact. Cold analyses run with no ranker — the exact fixed backward
// order — and feed every settled verdict into one shared prior store;
// warm analyses rank and skip with that store, serially and with 8
// workers. Any chain divergence or an executed+skipped/test-set mismatch
// fails the measurement itself: the artifact can only ever report a
// speedup over byte-identical diagnoses.
func measureFlips(list []*scenarios.Scenario) (*flipsArtifact, error) {
	art := &flipsArtifact{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note: "flip counts are deterministic and machine-portable; warm chains are " +
			"asserted byte-identical to cold (serial and 8-worker) before a row is emitted",
	}
	pst := prior.NewStore(prior.Config{})

	for _, sc := range list {
		d, prog, err := diagnoseFlips(sc, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("flips-measure %s (cold): %w", sc.Name, err)
		}
		chain := d.Chain.Format(prog)
		if want, ok := scenarios.GoldenChains[sc.Name]; ok && chain != want {
			return nil, fmt.Errorf("flips-measure %s: cold chain %q does not match the golden %q", sc.Name, chain, want)
		}
		pst.ObserveDiagnosis(prog, d)
		art.Scenarios = append(art.Scenarios, flipsRow{
			Scenario:  sc.Name,
			TestSet:   d.Stats.TestSet,
			ColdFlips: d.Stats.FlipsExecuted,
			Chain:     chain,
		})
	}

	for i, sc := range list {
		row := &art.Scenarios[i]
		for _, workers := range []int{0, 8} {
			d, prog, err := diagnoseFlips(sc, pst, workers)
			if err != nil {
				return nil, fmt.Errorf("flips-measure %s (warm, workers=%d): %w", sc.Name, workers, err)
			}
			if chain := d.Chain.Format(prog); chain != row.Chain {
				return nil, fmt.Errorf("flips-measure %s: warm chain (workers=%d) %q differs from cold %q — the prior changed the diagnosis",
					sc.Name, workers, chain, row.Chain)
			}
			if got := d.Stats.FlipsExecuted + d.Stats.FlipsSkipped; got != d.Stats.TestSet {
				return nil, fmt.Errorf("flips-measure %s (workers=%d): executed %d + skipped %d != test set %d",
					sc.Name, workers, d.Stats.FlipsExecuted, d.Stats.FlipsSkipped, d.Stats.TestSet)
			}
			if workers == 0 {
				row.WarmFlips = d.Stats.FlipsExecuted
				row.WarmSkipped = d.Stats.FlipsSkipped
				row.PriorHits = d.Stats.PriorHits
			} else if d.Stats.FlipsExecuted != row.WarmFlips || d.Stats.FlipsSkipped != row.WarmSkipped {
				return nil, fmt.Errorf("flips-measure %s: 8-worker pass executed/skipped %d/%d, serial %d/%d — the skip set depends on scheduling",
					sc.Name, d.Stats.FlipsExecuted, d.Stats.FlipsSkipped, row.WarmFlips, row.WarmSkipped)
			}
		}
		art.ColdFlips += row.ColdFlips
		art.WarmFlips += row.WarmFlips
		art.WarmSkipped += row.WarmSkipped
	}
	art.PriorPairs = pst.Pairs()
	if art.ColdFlips > 0 {
		art.Reduction = 1 - float64(art.WarmFlips)/float64(art.ColdFlips)
	}
	return art, nil
}

// printFlips measures the learned flip-ordering prior over the corpus —
// a cold pass feeding one shared store, then a warm pass ranking and
// skipping with it — and writes the numbers to stdout and, with -out,
// to a JSON artifact. The measured artifact is returned so -check-flips
// can compare it against a committed baseline.
func printFlips(list []*scenarios.Scenario, outPath string) (*flipsArtifact, error) {
	art, err := measureFlips(list)
	if err != nil {
		return nil, err
	}
	t := report.Table{Title: "Learned flip ordering: cold vs warm prior (corpus, serial + 8 workers)"}
	t.Add("Scenario", "test set", "cold flips", "warm flips", "skipped", "prior hits")
	for _, r := range art.Scenarios {
		t.Add(r.Scenario, fmt.Sprint(r.TestSet), fmt.Sprint(r.ColdFlips),
			fmt.Sprint(r.WarmFlips), fmt.Sprint(r.WarmSkipped), fmt.Sprint(r.PriorHits))
	}
	t.Write(os.Stdout)
	fmt.Printf("  (corpus flip tests: %d cold, %d warm — %.0f%% skipped; %d signature pairs learned)\n\n",
		art.ColdFlips, art.WarmFlips, art.Reduction*100, art.PriorPairs)

	if outPath != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return art, nil
}

// checkFlipsArtifact is the flip-regression CI gate: it re-measures the
// -flips artifact (which itself hard-fails on any warm chain diverging
// from cold or golden) and then holds the flip counts to the committed
// baseline at baselinePath: the warm pass must skip at least 25% of the
// corpus' flip tests, and per-scenario and corpus-total counts must stay
// within ±25% of the baseline. Corpus-total failures also print the
// per-scenario rows, so a CI log pinpoints which diagnosis regressed.
// With -out, the fresh artifact is written there so CI can upload it.
func checkFlipsArtifact(list []*scenarios.Scenario, baselinePath, outPath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("check-flips: %w", err)
	}
	var base flipsArtifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("check-flips: parsing %s: %w", baselinePath, err)
	}
	art, err := printFlips(list, outPath)
	if err != nil {
		return err
	}

	const tol = 0.25
	const minReduction = 0.25
	bad := 0
	fail := func(format string, args ...any) {
		fmt.Printf("FAIL "+format+"\n", args...)
		bad++
	}

	baseRows := make(map[string]flipsRow, len(base.Scenarios))
	for _, r := range base.Scenarios {
		baseRows[r.Scenario] = r
	}
	for _, r := range art.Scenarios {
		b, ok := baseRows[r.Scenario]
		if !ok {
			fail("%-22s not in baseline %s — regenerate it with -flips -out", r.Scenario, baselinePath)
			continue
		}
		if r.ColdFlips != b.ColdFlips {
			fail("%-22s cold flips = %d, baseline %d — the test set itself changed; regenerate the baseline",
				r.Scenario, r.ColdFlips, b.ColdFlips)
		}
		lo, hi := float64(b.WarmFlips)*(1-tol), float64(b.WarmFlips)*(1+tol)
		if w := float64(r.WarmFlips); w < lo || w > hi {
			fail("%-22s warm flips = %d, baseline %d (±25%%: %.1f..%.1f)",
				r.Scenario, r.WarmFlips, b.WarmFlips, lo, hi)
		}
	}

	aggBad := false
	if art.Reduction < minReduction {
		fail("corpus warm pass skips %.0f%% of flip tests (%d cold -> %d warm), floor %.0f%% — the prior stopped paying off",
			art.Reduction*100, art.ColdFlips, art.WarmFlips, minReduction*100)
		aggBad = true
	}
	if ceil := float64(base.WarmFlips) * (1 + tol); float64(art.WarmFlips) > ceil {
		fail("corpus warm flips = %d, baseline %d (ceiling +25%%: %.0f) — warm diagnoses execute more flip tests",
			art.WarmFlips, base.WarmFlips, ceil)
		aggBad = true
	}
	if aggBad {
		printFlipsRows(base.Scenarios, art.Scenarios)
	}

	if bad > 0 {
		where := ""
		if outPath != "" {
			where = fmt.Sprintf(" (fresh artifact written to %s)", outPath)
		}
		return fmt.Errorf("check-flips: %d regressions against %s%s", bad, baselinePath, where)
	}
	fmt.Printf("check-flips: no regression against %s (chains byte-identical, %.0f%% of flip tests skipped warm, tolerance ±25%%)\n",
		baselinePath, art.Reduction*100)
	return nil
}

// printFlipsRows shows each scenario's flip counts next to the
// baseline's when a corpus-total check fails, marking the rows that
// moved, so the offending scenarios are visible in the CI log without
// a local rerun.
func printFlipsRows(baseRows, freshRows []flipsRow) {
	base := make(map[string]flipsRow, len(baseRows))
	for _, r := range baseRows {
		base[r.Scenario] = r
	}
	t := report.Table{Title: "  per-scenario flip counts (fresh vs baseline)"}
	t.Add("Scenario", "warm", "base warm", "skipped", "base skipped")
	for _, r := range freshRows {
		b := base[r.Scenario]
		name := r.Scenario
		if r.WarmFlips != b.WarmFlips || r.WarmSkipped != b.WarmSkipped {
			name = "! " + name
		}
		t.Add(name, fmt.Sprint(r.WarmFlips), fmt.Sprint(b.WarmFlips),
			fmt.Sprint(r.WarmSkipped), fmt.Sprint(b.WarmSkipped))
	}
	t.Write(os.Stdout)
}

// snapshotCycle times one checkpoint / burst / revert cycle, best of 3
// passes of `cycles` cycles, using either the CoW journal pair or the
// deep-copy baseline.
func snapshotCycle(prog *kir.Program, cycles, burst int, deep bool) (time.Duration, error) {
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		m, err := kvm.New(prog)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < cycles; i++ {
			var (
				cowSnap  *kvm.Snapshot
				deepSnap *kvm.DeepSnapshot
			)
			if deep {
				deepSnap = m.DeepSnapshot()
			} else {
				cowSnap = m.Snapshot()
			}
			for s := 0; s < burst; s++ {
				if m.Failure() != nil {
					break
				}
				run := m.Runnable()
				if len(run) == 0 {
					break
				}
				if _, err := m.Step(run[0]); err != nil {
					return 0, err
				}
			}
			if deep {
				m.RestoreDeep(deepSnap)
			} else {
				m.Restore(cowSnap)
			}
		}
		if el := time.Since(start); best == 0 || el < best {
			best = el
		}
	}
	return best / time.Duration(cycles), nil
}

func printReproduction(seed int64) error {
	rows, err := eval.RunReproductionComparison(scenarios.GroupSyzkaller, seed)
	if err != nil {
		return err
	}
	t := report.Table{Title: "Reproduction cost: LIFS vs random scheduling (schedules until the reported failure)"}
	t.Add("Bug", "LIFS", "random (mean)", "random (worst seed)")
	for _, r := range rows {
		t.Add(shortTitle(r.Scenario),
			fmt.Sprint(r.LIFSScheds),
			fmt.Sprintf("%.1f", r.RandomRuns),
			fmt.Sprint(r.RandomMax))
	}
	t.Write(os.Stdout)
	fmt.Printf("  (random figures averaged over %d seeds)\n\n", eval.ReproTrials)
	return nil
}

func printAblations() error {
	rows, err := eval.RunAblations()
	if err != nil {
		return err
	}
	fmt.Println("Design-choice ablations (DESIGN.md):")
	for _, r := range rows {
		fmt.Printf("  %s [%s]\n", r.Mechanism, r.Scenario)
		fmt.Printf("    with:    %s\n", r.With)
		fmt.Printf("    without: %s\n", r.Without)
		fmt.Printf("    => %s\n", r.Verdict)
	}
	fmt.Println()
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aitia-bench:", err)
		os.Exit(1)
	}
}

func printTable2() error {
	rows, err := eval.RunGroup(scenarios.GroupCVE)
	if err != nil {
		return err
	}
	t := report.Table{Title: "Table 2: CVEs caused by a concurrency failure in Linux (reproduced)"}
	t.Add("Bug ID", "Subsystem", "LIFS time", "# sched", "Inter.", "CA time", "# sched")
	for _, r := range rows {
		t.Add(r.Scenario.Title, r.Scenario.Subsystem,
			fmt.Sprint(r.LIFSTime.Round(10_000)), fmt.Sprint(r.LIFSScheds),
			fmt.Sprint(r.Interleavings),
			fmt.Sprint(r.CATime.Round(10_000)), fmt.Sprint(r.CAScheds))
	}
	t.Write(os.Stdout)
	fmt.Println()
	return nil
}

func printTable3() error {
	rows, err := eval.RunGroup(scenarios.GroupSyzkaller)
	if err != nil {
		return err
	}
	t := report.Table{Title: "Table 3: Syzkaller concurrency bugs (reproduced)"}
	t.Add("Bug", "Subsystem", "Bug type", "Multi?", "LIFS time", "# sched", "Inter.", "CA time", "# sched", "Chain")
	for _, r := range rows {
		multi := "No"
		if r.Scenario.MultiVariable {
			multi = "Yes"
			if r.Scenario.LooselyCorrelated {
				multi = "Yes*"
			}
		}
		t.Add(shortTitle(r.Scenario), r.Scenario.Subsystem, r.Scenario.BugType, multi,
			fmt.Sprint(r.LIFSTime.Round(10_000)), fmt.Sprint(r.LIFSScheds),
			fmt.Sprint(r.Interleavings),
			fmt.Sprint(r.CATime.Round(10_000)), fmt.Sprint(r.CAScheds),
			fmt.Sprint(r.ChainRaces))
	}
	t.Write(os.Stdout)
	fmt.Println("  (* = loosely correlated variables)")
	fmt.Println()
	return nil
}

func printConciseness() error {
	rows, err := eval.RunGroup(scenarios.GroupSyzkaller)
	if err != nil {
		return err
	}
	c := eval.Concise(rows)
	fmt.Println("Conciseness (§5.2, reproduced):")
	fmt.Printf("  memory-accessing instructions per failed execution: avg %.1f (range %d..%d)\n",
		c.AvgMemAccesses, c.MinMemAccesses, c.MaxMemAccesses)
	fmt.Printf("  individual data races per failed execution:         avg %.1f (range %d..%d)\n",
		c.AvgRaces, c.MinRaces, c.MaxRaces)
	fmt.Printf("  data races in the causality chain:                  avg %.1f\n", c.AvgChainRaces)
	benign := 0
	for _, r := range rows {
		benign += r.BenignRaces
	}
	fmt.Printf("  benign races excluded across the corpus:            %d (none appear in any chain)\n\n", benign)
	return nil
}

func printBaselines(seed int64, withTable1 bool) error {
	rows, err := eval.RunBaselines(scenarios.GroupSyzkaller, seed)
	if err != nil {
		return err
	}
	t := report.Table{Title: "Baseline comparison on the Syzkaller corpus (§5.2/§5.3, reproduced)"}
	t.Add("Bug", "AITIA chain", "Kairux complete?", "CoopBL covers", "MUVI reaches?")
	var coop, muvi, kair int
	for _, r := range rows {
		if r.CoopBLComplete {
			coop++
		}
		if r.MUVIReaches {
			muvi++
		}
		if r.KairuxComplete {
			kair++
		}
		t.Add(shortTitle(r.Scenario),
			fmt.Sprintf("%d races", r.AITIAChain),
			yesNo(r.KairuxComplete),
			fmt.Sprintf("%d/%d", r.CoopBLCovered, r.AITIAChain),
			yesNo(r.MUVIReaches))
	}
	t.Write(os.Stdout)
	fmt.Printf("  AITIA diagnoses %d/%d; Kairux completes %d/%d; CoopBL completes %d/%d; MUVI reaches %d/%d\n\n",
		len(rows), len(rows), kair, len(rows), coop, len(rows), muvi, len(rows))

	if withTable1 {
		t1 := report.Table{Title: "Table 1: requirements matrix (derived from the measured corpus)"}
		t1.Add("System", "Comprehensive", "Pattern-agnostic", "Concise", "Evidence")
		for _, r := range eval.Table1(rows) {
			t1.Add(r.System, r.Comprehensive, r.PatternAgnostic, r.Concise, r.Evidence)
		}
		t1.Write(os.Stdout)
		fmt.Println()
	}
	return nil
}

func printFigure5() error {
	leaves, rep, err := eval.Figure5()
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: LIFS search tree on the fig5 scenario (reproduced)")
	for i, l := range leaves {
		status := ""
		if l.Failed {
			status = "  <- failure"
		}
		fmt.Printf("  search order %2d: %s%s\n", i+1, strings.Join(l.Labels, " => "), status)
	}
	fmt.Printf("  schedules: %d, pruned-equivalent states: %d, reproduced at interleaving count %d\n\n",
		rep.Stats.Schedules, rep.Stats.Pruned, rep.Stats.Interleavings)
	return nil
}

func printChains() error {
	rows, err := eval.RunAll()
	if err != nil {
		return err
	}
	fmt.Println("Causality chains across the corpus:")
	for _, r := range rows {
		fmt.Printf("  %-22s %s\n", r.Scenario.Name, r.Chain)
	}
	fmt.Println()
	return nil
}

func shortTitle(sc *scenarios.Scenario) string {
	if i := strings.IndexByte(sc.Title, ' '); i > 0 && strings.HasPrefix(sc.Title, "#") {
		return sc.Title[:i] + " " + sc.Subsystem
	}
	return sc.Name
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aitia/internal/core"
	"aitia/internal/faultinject"
	"aitia/internal/fleet"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// fleetNodes is the gate's cluster shape: three replicas, the smallest
// fleet where both the coordinator and a branch executor can die while
// a third node still carries the work.
var fleetNodes = []string{"fleet-a", "fleet-b", "fleet-c"}

// fleetOutcome records one scenario's gate result for the failure
// artifact.
type fleetOutcome struct {
	Scenario    string         `json:"scenario"`
	SerialChain string         `json:"serial_chain"`
	FleetChain  string         `json:"fleet_chain"`
	Degraded    string         `json:"degraded,omitempty"`
	Killed      []string       `json:"killed,omitempty"`
	Status      []fleet.Status `json:"nodes"`
	Failure     string         `json:"failure,omitempty"`
}

// runFleet is the fleet chaos CI gate. Per corpus scenario it runs the
// diagnosis three ways and demands byte-identical causality chains:
//
//  1. Serial baseline: the plain parallel search, no fleet, checked
//     against the golden set.
//  2. Chaos fleet: a fresh 3-node in-process fleet whose coordinator
//     leases every deepening-phase branch to its peers, under seeded
//     lease-expiry and handoff-drop faults at the given rate and node
//     death at a quarter of it. Whatever the fleet drops, re-leases or
//     loses to a SIGKILLed node, the chain must equal the serial one.
//  3. Partitioned coordinator: the coordinator is cut off from both
//     peers before the search starts; it must degrade to the local
//     serial sweep with the machine-readable fleet_partitioned reason —
//     and still produce the identical chain.
//
// The first scenario additionally exercises the job-routing handoff:
// its ring owner is killed before submission and the next replica in
// the ring takes the job over. Corpus-wide, the gate also fails unless
// at least one injected lease expiry fired and at least one node was
// actually killed mid-diagnosis — a chaos run where nothing went wrong
// proves nothing.
func runFleet(seed int64, rate float64, artifactDir string, list []*scenarios.Scenario, name string) error {
	pipeline := func(sc *scenarios.Scenario, dispatch core.BranchDispatcher) (*core.Diagnosis, string, error) {
		prog := sc.MustProgram()
		m, err := kvm.New(prog)
		if err != nil {
			return nil, "", err
		}
		rep, err := core.Reproduce(m, core.LIFSOptions{
			WantKind:  sc.WantKind,
			WantInstr: sc.WantInstr(),
			LeakCheck: sc.NeedsLeakCheck(),
			Workers:   4,
			Dispatch:  dispatch,
		})
		if err != nil {
			return nil, "", err
		}
		d, err := core.Analyze(m, rep, core.AnalysisOptions{
			LeakCheck: sc.NeedsLeakCheck(),
			Workers:   4,
		})
		if err != nil {
			return nil, "", err
		}
		return d, d.Chain.Format(prog), nil
	}
	// coordinatorFor picks the scenario's ring owner among the live
	// nodes — the replica a fleet submission would land on.
	coordinatorFor := func(c *fleet.LocalCluster, progHash string) *fleet.Node {
		any := c.Node(fleetNodes[0])
		for _, id := range any.JobSequence(progHash) {
			if !c.Killed(id) {
				return c.Node(id)
			}
		}
		return any
	}

	fmt.Printf("fleet gate: %d nodes, fault seed %d, rate %g (node death %g)\n",
		len(fleetNodes), seed, rate, rate/4)
	bad := 0
	var outcomes []fleetOutcome
	var totalExpiry, totalDrops, totalReexec, totalRemote, totalKills uint64
	for i, sc := range list {
		out := fleetOutcome{Scenario: sc.Name}
		fail := func(format string, args ...any) {
			out.Failure = fmt.Sprintf(format, args...)
			fmt.Printf("FAIL %-22s %s\n", sc.Name, out.Failure)
			bad++
		}
		progHash := sc.MustProgram().Hash()

		// 1. Serial baseline, held to the golden chain.
		_, chainSerial, serr := pipeline(sc, nil)
		out.SerialChain = chainSerial
		if serr != nil {
			fail("serial baseline errored: %v", serr)
			outcomes = append(outcomes, out)
			continue
		}
		if want := scenarios.GoldenChains[sc.Name]; chainSerial != want {
			fail("serial chain = %q, golden %q", chainSerial, want)
			outcomes = append(outcomes, out)
			continue
		}

		// 2. Chaos fleet: expiries and drops at rate, node death at a
		// quarter of it (a death is fleet-wide and permanent, so it is
		// the rarest event of the mix).
		plan := faultinject.NewPlan(seed, 0).
			SetRate(faultinject.KindLeaseExpiry, rate).
			SetRate(faultinject.KindPartition, rate).
			SetRate(faultinject.KindNodeDeath, rate/4)
		cluster := fleet.NewLocalCluster(fleetNodes, fleet.ClusterConfig{
			Epoch:    1,
			LeaseTTL: 500 * time.Millisecond,
			Fault:    plan,
		})
		coord := coordinatorFor(cluster, progHash)
		if i == 0 {
			// Job-routing handoff: the ring owner dies before this job
			// arrives; the next replica in the ring must take it.
			owner := coord.OwnerOf(progHash)
			cluster.Kill(owner)
			coord = coordinatorFor(cluster, progHash)
			coord.NoteJobHandoff()
			fmt.Printf("hand %-22s ring owner %s killed pre-submit, %s takes the job\n",
				sc.Name, owner, coord.ID())
		}
		disp := coord.Dispatcher()
		_, chainFleet, ferr := pipeline(sc, disp)
		out.FleetChain = chainFleet
		out.Degraded = disp.Degraded()
		st := coord.Status()
		out.Status = append(out.Status, st)
		totalExpiry += st.InjectedExpiry
		totalDrops += st.HandoffDrops
		totalReexec += st.Reexecuted
		totalRemote += st.RemoteBranches
		for _, id := range fleetNodes {
			if cluster.Killed(id) {
				out.Killed = append(out.Killed, id)
				totalKills++
			}
		}
		switch {
		case ferr != nil:
			fail("fleet run errored: %v", ferr)
		case chainFleet != chainSerial:
			fail("fleet chain = %q, serial %q", chainFleet, chainSerial)
		case disp.Degraded() != "" && disp.Degraded() != fleet.ReasonPartitioned:
			fail("fleet degraded with unknown reason %q", disp.Degraded())
		default:
			fmt.Printf("ok   %-22s %d remote, %d expired, %d dropped, %d re-executed, killed %v\n",
				sc.Name, st.RemoteBranches, st.InjectedExpiry, st.HandoffDrops, st.Reexecuted, out.Killed)
		}

		// 3. Partitioned coordinator: no chaos, just the cut. The search
		// must degrade to local serial with the machine-readable reason,
		// not hang and not diverge.
		pcluster := fleet.NewLocalCluster(fleetNodes, fleet.ClusterConfig{Epoch: 1, LeaseTTL: 500 * time.Millisecond})
		pcoord := coordinatorFor(pcluster, progHash)
		pcluster.Partition(pcoord.ID())
		pdisp := pcoord.Dispatcher()
		_, chainPart, perr := pipeline(sc, pdisp)
		switch {
		case perr != nil:
			fail("partitioned run errored: %v", perr)
		case pdisp.Degraded() != fleet.ReasonPartitioned:
			fail("partitioned coordinator degraded = %q, want %q", pdisp.Degraded(), fleet.ReasonPartitioned)
		case chainPart != chainSerial:
			fail("partitioned chain = %q, serial %q", chainPart, chainSerial)
		default:
			fmt.Printf("part %-22s degraded to local serial (%s), chain identical\n", sc.Name, pdisp.Degraded())
		}
		outcomes = append(outcomes, out)
	}

	fmt.Printf("fleet gate totals: %d remote branches, %d injected expiries, %d handoff drops, %d re-executions, %d node deaths\n",
		totalRemote, totalExpiry, totalDrops, totalReexec, totalKills)
	if totalExpiry == 0 {
		fmt.Printf("FAIL corpus-wide: no injected lease expiry fired (seed %d, rate %g) — the chaos proved nothing\n", seed, rate)
		bad++
	}
	if totalKills == 0 {
		fmt.Printf("FAIL corpus-wide: no node death fired (seed %d, rate %g) — raise the rate or change the seed\n", seed, rate/4)
		bad++
	}
	if bad > 0 {
		if err := writeFleetArtifacts(artifactDir, outcomes); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: could not write artifacts: %v\n", err)
		}
		return fmt.Errorf("fleet: %d violations across %d %s scenarios (seed %d, rate %g)", bad, len(list), name, seed, rate)
	}
	fmt.Printf("fleet: all %d %s scenarios byte-identical to serial across chaos fleet, node death and coordinator partition (seed %d, rate %g)\n",
		len(list), name, seed, rate)
	return nil
}

// writeFleetArtifacts dumps every scenario's outcome (chains, degraded
// reasons, node statuses, kill lists) as JSON so a failed CI gate
// leaves a postmortem. A nil/empty dir disables artifacts.
func writeFleetArtifacts(dir string, outcomes []fleetOutcome) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload, err := json.MarshalIndent(outcomes, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "fleet-outcomes.json"), payload, 0o644)
}

// Command aitia-fuzz is the bug-finding front end of the pipeline: a
// Syzkaller-style random-schedule fuzzer that executes a kernel program
// under randomized interleavings until a failure manifests, then emits
// the crash report and the timestamped execution trace that command
// aitia (or the library) consumes — and, with -diagnose, runs the full
// diagnosis right away.
//
// Usage:
//
//	aitia-fuzz -scenario cve-2017-15649 -seed 7
//	aitia-fuzz -file bug.kasm -runs 50000 -diagnose
package main

import (
	"flag"
	"fmt"
	"os"

	"aitia"
	findingpkg "aitia/internal/finding"
	"aitia/internal/fuzz"
	"aitia/internal/history"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/scenarios"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "fuzz a built-in scenario by name")
		file     = flag.String("file", "", "fuzz a kasm program file")
		seed     = flag.Int64("seed", 1, "campaign seed")
		runs     = flag.Int("runs", 0, "maximum runs (0 = default)")
		leak     = flag.Bool("leak-check", false, "enable the memory-leak oracle")
		diagnose = flag.Bool("diagnose", false, "diagnose the finding with AITIA")
		out      = flag.String("out", "", "write the finding to a JSON file (consumed by 'aitia -finding')")
	)
	flag.Parse()

	var (
		prog *kir.Program
		err  error
	)
	switch {
	case *scenario != "":
		sc, ok := scenarios.ByName(*scenario)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q", *scenario))
		}
		if sc.NeedsLeakCheck() {
			*leak = true
		}
		prog, err = sc.Program()
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err == nil {
			prog, err = kasm.Parse(string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "need -scenario or -file; see -help")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fz, err := fuzz.New(prog, fuzz.Options{Seed: *seed, MaxRuns: *runs, LeakCheck: *leak})
	if err != nil {
		fatal(err)
	}
	finding, err := fz.Campaign()
	if err != nil {
		fatal(err)
	}
	if finding == nil {
		fmt.Println("no failure found (try more -runs or another -seed)")
		return
	}

	if *out != "" {
		if err := findingpkg.Save(*out, findingpkg.FromFinding(prog, finding)); err != nil {
			fatal(err)
		}
		fmt.Printf("finding written to %s\n", *out)
	}

	fmt.Printf("failure found after %d run(s) (seed %d)\n\n", finding.Runs, finding.Seed)
	fmt.Println("--- crash report ---")
	fmt.Print(finding.Report)
	fmt.Println("\n--- execution trace (ftrace analogue) ---")
	fmt.Print(finding.Trace.Format())
	fmt.Println("\n--- slices (backward from the failure) ---")
	for i, sl := range history.Model(finding.Trace) {
		fmt.Printf("%2d: %s\n", i+1, sl)
	}

	if *diagnose {
		fmt.Println("\n--- AITIA diagnosis ---")
		src := kasm.Disassemble(prog)
		p, err := aitia.Compile(src)
		if err != nil {
			fatal(err)
		}
		fres, err := aitia.FuzzAndDiagnose(p, *seed, *runs, aitia.Options{LeakCheck: *leak})
		if err != nil {
			fatal(err)
		}
		fmt.Print(fres.Diagnosis.Report)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aitia-fuzz:", err)
	os.Exit(1)
}

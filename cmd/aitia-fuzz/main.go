// Command aitia-fuzz is the bug-finding front end of the pipeline: a
// Syzkaller-style random-schedule fuzzer that executes a kernel program
// under randomized interleavings until a failure manifests, then emits
// the crash report and the timestamped execution trace that command
// aitia (or the library) consumes — and, with -diagnose, runs the full
// diagnosis right away.
//
// With -factory it switches roles and runs the scenario factory instead:
// seeded fuzz campaigns over program generators and corpus mutators,
// each finding delta-debugged, diagnosed, classified into the bug-class
// matrix and emitted as a self-contained generated scenario.
//
// Usage:
//
//	aitia-fuzz -scenario cve-2017-15649 -seed 7
//	aitia-fuzz -file bug.kasm -runs 50000 -diagnose
//	aitia-fuzz -factory -seed 1 -target-count 75 -out internal/scenarios/generated
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"aitia"
	"aitia/internal/factory"
	findingpkg "aitia/internal/finding"
	"aitia/internal/fuzz"
	"aitia/internal/history"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/scenarios"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "fuzz a built-in scenario by name")
		file     = flag.String("file", "", "fuzz a kasm program file")
		seed     = flag.Int64("seed", 1, "campaign seed")
		runs     = flag.Int("runs", 0, "maximum runs (0 = default)")
		leak     = flag.Bool("leak-check", false, "enable the memory-leak oracle")
		diagnose = flag.Bool("diagnose", false, "diagnose the finding with AITIA")
		out      = flag.String("out", "", "write the finding to a JSON file (consumed by 'aitia -finding'); with -factory, the corpus output directory")

		factoryMode  = flag.Bool("factory", false, "run the scenario factory: fuzz, minimize, diagnose, classify, emit")
		targetCount  = flag.Int("target-count", 75, "factory: number of scenarios to emit")
		minClass     = flag.Int("min-class", 3, "factory: minimum combined representatives per failure class (-1 disables)")
		campaignRuns = flag.Int("campaign-runs", 0, "factory: max runs per fuzz campaign (0 = default)")
		metricsAddr  = flag.String("metrics-addr", "", "factory: serve Prometheus progress counters on this address (e.g. :9190)")
	)
	flag.Parse()

	if *factoryMode {
		runFactory(*seed, *targetCount, *minClass, *campaignRuns, *out, *metricsAddr)
		return
	}

	var (
		prog *kir.Program
		err  error
	)
	switch {
	case *scenario != "":
		sc, ok := scenarios.ByName(*scenario)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q", *scenario))
		}
		if sc.NeedsLeakCheck() {
			*leak = true
		}
		prog, err = sc.Program()
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err == nil {
			prog, err = kasm.Parse(string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "need -scenario or -file; see -help")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fz, err := fuzz.New(prog, fuzz.Options{Seed: *seed, MaxRuns: *runs, LeakCheck: *leak})
	if err != nil {
		fatal(err)
	}
	finding, err := fz.Campaign()
	if err != nil {
		fatal(err)
	}
	if finding == nil {
		fmt.Println("no failure found (try more -runs or another -seed)")
		return
	}

	if *out != "" {
		if err := findingpkg.Save(*out, findingpkg.FromFinding(prog, finding)); err != nil {
			fatal(err)
		}
		fmt.Printf("finding written to %s\n", *out)
	}

	fmt.Printf("failure found after %d run(s) (seed %d)\n\n", finding.Runs, finding.Seed)
	fmt.Println("--- crash report ---")
	fmt.Print(finding.Report)
	fmt.Println("\n--- execution trace (ftrace analogue) ---")
	fmt.Print(finding.Trace.Format())
	fmt.Println("\n--- slices (backward from the failure) ---")
	for i, sl := range history.Model(finding.Trace) {
		fmt.Printf("%2d: %s\n", i+1, sl)
	}

	if *diagnose {
		fmt.Println("\n--- AITIA diagnosis ---")
		src := kasm.Disassemble(prog)
		p, err := aitia.Compile(src)
		if err != nil {
			fatal(err)
		}
		fres, err := aitia.FuzzAndDiagnose(p, *seed, *runs, aitia.Options{LeakCheck: *leak})
		if err != nil {
			fatal(err)
		}
		fmt.Print(fres.Diagnosis.Report)
	}
}

// runFactory drives a full factory run and writes the corpus. Progress
// counters stream over -metrics-addr in the same aitia_* Prometheus
// family the service exposes.
func runFactory(seed int64, targetCount, minClass, campaignRuns int, out, metricsAddr string) {
	if out == "" {
		fmt.Fprintln(os.Stderr, "aitia-fuzz: -factory needs -out <dir>")
		os.Exit(2)
	}
	stats := &factory.Stats{}
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			stats.WriteMetrics(w)
		})
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "aitia-fuzz: metrics:", err)
			}
		}()
		fmt.Printf("factory metrics on http://%s/metrics\n", metricsAddr)
	}
	sum, err := factory.Run(context.Background(), factory.Options{
		Seed:         seed,
		TargetCount:  targetCount,
		MinPerClass:  minClass,
		CampaignRuns: campaignRuns,
		Stats:        stats,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	if err := factory.WriteCorpus(out, sum.Emitted); err != nil {
		fatal(err)
	}
	fmt.Printf("\nemitted %d scenarios to %s after %d campaigns\n", len(sum.Emitted), out, sum.Attempts)
	fmt.Printf("campaigns=%d findings=%d emitted=%d duplicates=%d rejected=%d minimize_replays=%d\n",
		stats.Campaigns.Load(), stats.Findings.Load(), stats.Emitted.Load(),
		stats.Duplicates.Load(), stats.Rejected.Load(), stats.MinReplays.Load())
	fmt.Printf("\ncombined bug-class matrix (hand-built + emitted):\n%s", sum.Matrix)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aitia-fuzz:", err)
	os.Exit(1)
}

// Command aitia diagnoses the root cause of a kernel concurrency failure:
// it reproduces the failure with Least Interleaving First Search and
// distills it into a causality chain with Causality Analysis.
//
// Usage:
//
//	aitia -list                          # list the built-in bug corpus
//	aitia -scenario cve-2017-15649       # diagnose a corpus scenario
//	aitia -file bug.kasm                 # diagnose a kasm program
//	aitia -scenario fig1 -quiet          # print only the chain
//	aitia -scenario fig1 -emit-report    # render the failure as a crash report
//	aitia -report crash.txt -scenario fig1  # diagnose from a crash report alone
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aitia"
	"aitia/internal/core"
	"aitia/internal/finding"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/manager"
	"aitia/internal/obs"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the built-in scenario corpus and exit")
		scenario   = flag.String("scenario", "", "diagnose a built-in scenario by name")
		file       = flag.String("file", "", "diagnose a kasm program file")
		findingArg = flag.String("finding", "", "diagnose a finding file written by 'aitia-fuzz -out'")
		reportArg  = flag.String("report", "", "diagnose from a KCSAN/KASAN-style crash report file; the program comes from -scenario or -file")
		emitReport = flag.Bool("emit-report", false, "with -scenario: reproduce the failure and print it as a crash report, then exit")
		export     = flag.String("export-corpus", "", "write every corpus scenario as a .kasm file into this directory and exit")
		verifyFix  = flag.Bool("verify-fix", false, "with -scenario: check that the modelled developer fix prevents the failure; with -file and -fixed: check a custom patch")
		fixedFile  = flag.String("fixed", "", "patched kasm program to verify against -file's diagnosis")
		workers    = flag.Int("workers", 0, "parallel diagnoser instances (0 = GOMAXPROCS)")
		lifsWork   = flag.Int("lifs-workers", 0, "parallelize the LIFS search itself across this many goroutines (0 = serial)")
		kind       = flag.String("failure", "", "expected failure kind from the crash report (optional)")
		label      = flag.String("at", "", "expected failing instruction label (optional)")
		leak       = flag.Bool("leak-check", false, "enable the memory-leak oracle")
		quiet      = flag.Bool("quiet", false, "print only the causality chain")
		traceOut   = flag.String("trace-out", "", "write the diagnosis' execution trace as Chrome trace-event JSON to this path (open in chrome://tracing or https://ui.perfetto.dev)")
		faultSeed  = flag.Int64("fault-seed", 0, "seed for deterministic fault injection (chaos-testing the diagnoser); active when -fault-rate > 0")
		faultRate  = flag.Float64("fault-rate", 0, "per-decision fault probability (snapshot restores, schedule enforcement, worker VMs); 0 disables injection")
		priorDir   = flag.String("prior", "", "directory for the learned flip-ordering prior; diagnoses load it to rank and skip flip tests, then fold their verdicts back in")
	)
	flag.Parse()

	if *list {
		for _, s := range aitia.Scenarios() {
			fmt.Printf("%-22s %-14s %-13s %s\n", s.Name, s.Group+"/"+s.Subsystem, s.BugType, s.Title)
		}
		return
	}
	if *export != "" {
		if err := exportCorpus(*export); err != nil {
			fatal(err)
		}
		return
	}

	opts := aitia.Options{
		Workers:      *workers,
		LIFSWorkers:  *lifsWork,
		FailureKind:  *kind,
		FailureLabel: *label,
		LeakCheck:    *leak,
		FaultSeed:    *faultSeed,
		FaultRate:    *faultRate,
		PriorDir:     *priorDir,
	}
	if *traceOut != "" {
		opts.Tracer = obs.New()
	}

	if *emitReport {
		if *scenario == "" {
			fatal(fmt.Errorf("-emit-report needs -scenario"))
		}
		text, err := aitia.ScenarioReport(*scenario, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}

	if *verifyFix {
		if err := runVerifyFix(*scenario, *file, *fixedFile, opts); err != nil {
			fatal(err)
		}
		if err := writeTrace(*traceOut, opts.Tracer); err != nil {
			fatal(err)
		}
		return
	}

	var (
		res *aitia.Result
		err error
	)
	switch {
	case *reportArg != "":
		res, err = diagnoseReport(*reportArg, *scenario, *file, opts)
	case *scenario != "":
		res, err = aitia.DiagnoseScenario(*scenario, opts)
	case *file != "":
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		prog, cerr := aitia.Compile(string(src))
		if cerr != nil {
			fatal(cerr)
		}
		res, err = aitia.Diagnose(prog, opts)
	case *findingArg != "":
		res, err = diagnoseFinding(*findingArg, opts)
	default:
		fmt.Fprintln(os.Stderr, "need -scenario, -file, -finding or -list; see -help")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if err := writeTrace(*traceOut, opts.Tracer); err != nil {
		fatal(err)
	}
	if res.Partial {
		fmt.Fprintf(os.Stderr, "aitia: partial diagnosis (%s): %d race(s) left untested\n",
			res.PartialReason, len(res.Unknown))
	}
	if len(res.ReportPartial) > 0 {
		fmt.Fprintf(os.Stderr, "aitia: report resolved with gaps (%s); diagnosis fell back to a wider search\n",
			strings.Join(res.ReportPartial, ", "))
	}
	if *quiet {
		fmt.Println(res.Chain)
		return
	}
	fmt.Print(res.Report)
}

// writeTrace exports the tracer's events as a Chrome trace-event JSON
// file. A nil tracer (no -trace-out) is a no-op.
func writeTrace(path string, tr *obs.Tracer) error {
	if path == "" || !tr.Enabled() {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aitia: wrote execution trace to %s (%d spans)\n", path, len(tr.Events()))
	return nil
}

// diagnoseReport runs the pipeline from a crash report alone: the report
// file is parsed and resolved against the program (from -scenario or
// -file), and its suspects seed a constrained LIFS search.
func diagnoseReport(reportPath, scenario, file string, opts aitia.Options) (*aitia.Result, error) {
	text, err := os.ReadFile(reportPath)
	if err != nil {
		return nil, err
	}
	var prog *aitia.Program
	switch {
	case scenario != "":
		prog, err = aitia.ScenarioProgram(scenario)
	case file != "":
		var src []byte
		if src, err = os.ReadFile(file); err == nil {
			prog, err = aitia.Compile(string(src))
		}
	default:
		return nil, fmt.Errorf("-report needs the program it crashed: add -scenario or -file")
	}
	if err != nil {
		return nil, err
	}
	return aitia.DiagnoseReport(prog, string(text), opts)
}

// diagnoseFinding runs the pipeline on a saved bug-finder finding. A
// trace finding is modelled into slices with the crash information
// constraining which failure LIFS accepts; a report-only finding (no
// trace, just a crash report) goes through the report-driven pipeline.
func diagnoseFinding(path string, opts aitia.Options) (*aitia.Result, error) {
	prog, tr, file, err := finding.Load(path)
	if err != nil {
		return nil, err
	}
	if file.ReportOnly() {
		p, err := aitia.Compile(file.Program)
		if err != nil {
			return nil, err
		}
		return aitia.DiagnoseReport(p, file.Report, opts)
	}
	mgr, err := manager.New(prog, manager.Options{Workers: opts.Workers, LIFSWorkers: opts.LIFSWorkers, Tracer: opts.Tracer})
	if err != nil {
		return nil, err
	}
	mres, err := mgr.DiagnoseTrace(context.Background(), tr)
	if err != nil {
		return nil, err
	}
	return aitia.FromManagerResult(prog, mres), nil
}

// runVerifyFix implements the paper's §5.1 verification: diagnose the
// buggy program, then show that the patched variant no longer reproduces
// the failure — the fix removed an interleaving order from the chain.
func runVerifyFix(scenario, file, fixedFile string, opts aitia.Options) error {
	var (
		res       *aitia.Result
		fixedProg *kir.Program
		err       error
	)
	switch {
	case scenario != "":
		sc, ok := scenarios.ByName(scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q", scenario)
		}
		res, err = aitia.DiagnoseScenario(scenario, opts)
		if err != nil {
			return err
		}
		fixedProg, err = sc.Fixed()
		if err != nil {
			return err
		}
	case file != "" && fixedFile != "":
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return rerr
		}
		prog, cerr := aitia.Compile(string(src))
		if cerr != nil {
			return cerr
		}
		res, err = aitia.Diagnose(prog, opts)
		if err != nil {
			return err
		}
		fsrc, rerr := os.ReadFile(fixedFile)
		if rerr != nil {
			return rerr
		}
		fixedProg, err = kasm.Parse(string(fsrc))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-verify-fix needs -scenario, or -file plus -fixed")
	}

	fmt.Println("diagnosis of the buggy program:")
	fmt.Println("  " + res.Chain)

	m, err := kvm.New(fixedProg)
	if err != nil {
		return err
	}
	lifs := core.LIFSOptions{LeakCheck: opts.LeakCheck, WantInstr: kir.NoInstr}
	if k, ok := sanitizer.KindByName(res.Failure); ok {
		lifs.WantKind = k
	}
	_, err = core.Reproduce(m, lifs)
	switch {
	case core.IsNotReproduced(err):
		fmt.Println("\nfix verified: the failure does not reproduce on the patched program —")
		fmt.Println("the patch removes an interleaving order present in the chain.")
		return nil
	case err == nil:
		return fmt.Errorf("fix REJECTED: the patched program still reproduces the failure")
	default:
		return err
	}
}

// exportCorpus writes every corpus scenario as a standalone .kasm file,
// with its ground truth as a comment header, so the programs can be
// inspected, edited and re-diagnosed with `aitia -file`.
func exportCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range scenarios.All() {
		prog, err := sc.Program()
		if err != nil {
			return err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "; %s — %s\n", sc.Name, sc.Title)
		fmt.Fprintf(&b, "; subsystem: %s, bug type: %s, group: %s\n", sc.Subsystem, sc.BugType, sc.Group)
		fmt.Fprintf(&b, "; expected failure: %s\n", sc.WantKind)
		if sc.WantChain != "" {
			fmt.Fprintf(&b, "; expected chain: %s\n", sc.WantChain)
		}
		if sc.Notes != "" {
			fmt.Fprintf(&b, "; %s\n", sc.Notes)
		}
		b.WriteString("\n")
		b.WriteString(kasm.Disassemble(prog))
		path := filepath.Join(dir, sc.Name+".kasm")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aitia:", err)
	os.Exit(1)
}

// Command aitia-serve runs the diagnosis service: a long-running HTTP
// daemon that accepts kasm programs or built-in scenario names as jobs,
// runs the LIFS + Causality Analysis pipeline on a worker pool, and
// serves the resulting causality chains. See README.md ("Running as a
// service") for the endpoints and curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aitia/internal/faultinject"
	"aitia/internal/fleet"
	"aitia/internal/service"
	"aitia/internal/service/httpapi"
)

// parsePeers parses the -peers flag: comma-separated id=url entries,
// e.g. "n1=http://host1:8080,n2=http://host2:8080". The local node's
// entry may be included (its URL is ignored for routing to self).
func parsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, url, ok := strings.Cut(ent, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("malformed peer entry %q (want id=url)", ent)
		}
		peers[id] = url
	}
	return peers, nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 4, "worker-pool size (concurrent diagnoses)")
		queue      = flag.Int("queue", 64, "job-queue depth (backpressure beyond this)")
		cacheSize  = flag.Int("cache", 128, "result-cache capacity in entries")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job deadline")
		jobWorkers = flag.Int("job-workers", 1, "per-job parallelism (parallel flip tests)")
		maxJobW    = flag.Int("max-job-workers", 8, "cap on the per-request 'workers' option (parallel LIFS search)")
		drain      = flag.Duration("drain-timeout", 5*time.Minute, "max time to drain in-flight jobs on shutdown")
		debugAddr  = flag.String("debug-addr", "", "listen address for the net/http/pprof profiling endpoints (e.g. localhost:6060); empty disables them")
		faultSeed  = flag.Int64("fault-seed", 0, "seed for deterministic fault injection (chaos testing); active when -fault-rate > 0")
		faultRate  = flag.Float64("fault-rate", 0, "per-decision fault probability for every fault kind; 0 disables injection entirely")
		retryMax   = flag.Int("retry-max-attempts", 0, "attempts (including the first) for faulted operations; 0 uses the built-in default")
		retryBase  = flag.Duration("retry-base-backoff", 0, "initial retry backoff, doubling per attempt; 0 uses the built-in default")
		retryCap   = flag.Duration("retry-max-backoff", 0, "backoff ceiling; 0 uses the built-in default")
		requeues   = flag.Int("max-requeues", 0, "requeues per job after classified infrastructure faults; 0 uses the default (2), negative disables")
		dataDir    = flag.String("data-dir", "", "directory for the durable job journal and search checkpoints; empty runs in-memory (no crash recovery)")
		syncWrites = flag.Bool("sync", false, "with -data-dir: fsync every journal append (slower, survives power loss, not just process death)")
		ckEvery    = flag.Int("checkpoint-every", 0, "with -data-dir: also checkpoint LIFS every N schedules within a phase (serial searches only); 0 checkpoints at phase boundaries only")
		priorMin   = flag.Int("prior-min-support", 0, "benign observations required before the learned prior skips a flip test (0 = default 1, negative disables the prior)")
		nodeID     = flag.String("node-id", "", "this replica's fleet identity; empty runs single-node")
		peersSpec  = flag.String("peers", "", "fleet members as comma-separated id=url entries (e.g. n1=http://host1:8080,n2=http://host2:8080); requires -node-id")
		leaseTTL   = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "branch-lease duration between heartbeats in fleet mode")
		fleetEpoch = flag.Uint64("fleet-epoch", 1, "fleet incarnation; bump after a fleet-wide restart so stale leases from the old incarnation are fenced off")
	)
	flag.Parse()

	var plan *faultinject.Plan
	if *faultRate > 0 {
		plan = faultinject.NewPlan(*faultSeed, *faultRate)
		fmt.Fprintf(os.Stderr, "aitia-serve: fault injection armed (seed %d, rate %g)\n", *faultSeed, *faultRate)
	}

	if *debugAddr != "" {
		// pprof registers on the DefaultServeMux; serve it on its own
		// listener so the profiling surface never shares a port with the
		// public API.
		go func() {
			fmt.Fprintf(os.Stderr, "aitia-serve: pprof on http://%s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "aitia-serve: pprof listener: %v\n", err)
			}
		}()
	}

	// Fleet mode: build the node (membership rings + lease table) before
	// the service opens, so Open can attach the WAL to the lease table
	// and replay any leases the previous incarnation left out.
	var fleetNode *fleet.Node
	var peerURLs map[string]string
	if *peersSpec != "" {
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "aitia-serve: -peers requires -node-id")
			os.Exit(1)
		}
		urls, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aitia-serve: %v\n", err)
			os.Exit(1)
		}
		peerURLs = urls
		ids := make([]string, 0, len(urls)+1)
		for id := range urls {
			ids = append(ids, id)
		}
		if _, ok := urls[*nodeID]; !ok {
			ids = append(ids, *nodeID)
		}
		fleetNode = fleet.New(fleet.Config{
			ID:        *nodeID,
			Peers:     ids,
			Epoch:     *fleetEpoch,
			LeaseTTL:  *leaseTTL,
			Fault:     plan,
			Transport: &fleet.HTTPTransport{Peers: urls},
		})
		fmt.Fprintf(os.Stderr, "aitia-serve: fleet member %s (epoch %d, %d members, lease TTL %s)\n",
			*nodeID, *fleetEpoch, len(ids), *leaseTTL)
	}

	svc, err := service.Open(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		JobTimeout:      *jobTimeout,
		JobWorkers:      *jobWorkers,
		MaxJobWorkers:   *maxJobW,
		MaxRequeues:     *requeues,
		DataDir:         *dataDir,
		SyncWrites:      *syncWrites,
		CheckpointEvery: *ckEvery,
		PriorMinSupport: *priorMin,
		NodeID:          *nodeID,
		Fleet:           fleetNode,
		Fault:           plan,
		Retry: faultinject.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseBackoff: *retryBase,
			MaxBackoff:  *retryCap,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aitia-serve: opening durable state in %s: %v\n", *dataDir, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "aitia-serve: durable state in %s (recovered %d jobs)\n",
			*dataDir, svc.Metrics().JobsRecovered.Value())
	}
	srv := &http.Server{Addr: *addr, Handler: httpapi.NewWithFleet(svc, httpapi.FleetConfig{PeerURLs: peerURLs})}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "aitia-serve: listening on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cacheSize)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "aitia-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain queued
	// and in-flight jobs before exiting.
	fmt.Fprintln(os.Stderr, "aitia-serve: shutting down, draining jobs...")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "aitia-serve: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "aitia-serve: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "aitia-serve: drained cleanly")
}

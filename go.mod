module aitia

go 1.23

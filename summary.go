package aitia

import (
	"time"

	"aitia/internal/obs"
)

// SpanStat aggregates the execution tracer's spans of one (category,
// name) pair: count and total duration. It is an alias of the internal
// tracer's aggregate so pipeline results serialize without conversion.
type SpanStat = obs.SpanStat

// RaceVerdict pairs one tested race with its Causality Analysis verdict
// ("root-cause", "benign" or "ambiguous").
type RaceVerdict struct {
	Race    Race   `json:"race"`
	Verdict string `json:"verdict"`
}

// ResultSummary is the JSON-serializable projection of a diagnosis:
// everything a caller outside this process needs (the chain, the
// root-cause races, the per-race verdicts, stage timings and search
// statistics), with no pointers into internal pipeline types. It is the
// wire format of the diagnosis service and round-trips through
// encoding/json without loss.
type ResultSummary struct {
	// Scenario is the corpus scenario name, when diagnosed from the corpus.
	Scenario string `json:"scenario,omitempty"`
	// Failure is the crash symptom ("kernel BUG (BUG_ON)", ...).
	Failure string `json:"failure"`
	// FailSequence is the failure-causing instruction sequence.
	FailSequence string `json:"fail_sequence,omitempty"`
	// Chain is the formatted causality chain.
	Chain string `json:"chain"`
	// ChainRaces are the chain's races in chain order (the root cause).
	ChainRaces []Race `json:"chain_races,omitempty"`
	// BenignRaces are the races excluded from the chain.
	BenignRaces []Race `json:"benign_races,omitempty"`
	// UnknownRaces are races whose flip tests could not complete; when
	// present the diagnosis is Partial.
	UnknownRaces []Race `json:"unknown_races,omitempty"`
	// Partial marks a degraded diagnosis (the chain covers only the races
	// that could be tested); PartialReason is the machine-readable cause,
	// e.g. "flip_retries_exhausted=2".
	Partial       bool   `json:"partial,omitempty"`
	PartialReason string `json:"partial_reason,omitempty"`
	// Verdicts lists every tested race with its verdict.
	Verdicts []RaceVerdict `json:"verdicts,omitempty"`
	// ReportPartial lists the degradation reasons of a report-driven
	// diagnosis whose crash report did not fully resolve against the
	// program (see aitia.DiagnoseReport).
	ReportPartial []string `json:"report_partial,omitempty"`

	// SlicesTried counts reproducer launches until the failure reproduced.
	SlicesTried int `json:"slices_tried,omitempty"`
	// Stage wall-clock times (JSON: integer nanoseconds).
	ReproduceTime time.Duration `json:"reproduce_ns,omitempty"`
	DiagnoseTime  time.Duration `json:"diagnose_ns,omitempty"`

	// Search statistics, matching the paper's Tables 2-3 columns.
	LIFSSchedules     int `json:"lifs_schedules,omitempty"`
	Interleavings     int `json:"interleavings,omitempty"`
	AnalysisSchedules int `json:"analysis_schedules,omitempty"`
	TestSetSize       int `json:"test_set_size,omitempty"`
	MemAccesses       int `json:"mem_accesses,omitempty"`
	// LIFSPruned counts search branches skipped as equivalent states;
	// SnapshotBytes is the search's copy-on-write checkpointing cost.
	LIFSPruned    int    `json:"lifs_pruned,omitempty"`
	SnapshotBytes uint64 `json:"snapshot_bytes,omitempty"`
	// Incremental-replay prefix cache (search + analysis): total
	// instruction work, the share spent re-executing known prefixes, the
	// prefix work skipped via pinned snapshots, the runs started from a
	// pin, and the peak bytes pinned.
	ExecutedInstrs uint64 `json:"executed_instrs,omitempty"`
	ReplayedInstrs uint64 `json:"replayed_instrs,omitempty"`
	SavedInstrs    uint64 `json:"saved_instrs,omitempty"`
	PrefixHits     int    `json:"prefix_hits,omitempty"`
	PinnedBytes    uint64 `json:"pinned_bytes,omitempty"`
	// Learned flip ordering (Options.PriorDir / the service's prior):
	// flip tests executed, flip tests settled benign by the prior
	// without a run, and tested races with prior observations.
	FlipsExecuted int `json:"flips_executed,omitempty"`
	FlipsSkipped  int `json:"flips_skipped,omitempty"`
	PriorHits     int `json:"prior_hits,omitempty"`
	// Phases reports the iterative deepening's per-phase schedule counts
	// and wall-clock times.
	Phases []PhaseStat `json:"phases,omitempty"`
	// Spans aggregates the execution tracer's spans per (category, name):
	// how many spans each pipeline stage emitted and their total duration.
	// Empty unless the diagnosis ran with tracing.
	Spans []SpanStat `json:"spans,omitempty"`
	// Resumed reports that a pipeline stage continued from a durable
	// checkpoint; CheckpointAge is the age of the search checkpoint it
	// resumed from (JSON: integer nanoseconds).
	Resumed       bool          `json:"resumed,omitempty"`
	CheckpointAge time.Duration `json:"checkpoint_age_ns,omitempty"`
}

// Summary projects the diagnosis onto its serializable form.
func (r *Result) Summary() *ResultSummary {
	s := &ResultSummary{
		Scenario:          r.Scenario,
		Failure:           r.Failure,
		FailSequence:      r.FailSequence,
		Chain:             r.Chain,
		ChainRaces:        append([]Race(nil), r.ChainRaces...),
		BenignRaces:       append([]Race(nil), r.Benign...),
		UnknownRaces:      append([]Race(nil), r.Unknown...),
		Partial:           r.Partial,
		PartialReason:     r.PartialReason,
		ReportPartial:     append([]string(nil), r.ReportPartial...),
		SlicesTried:       r.SlicesTried,
		ReproduceTime:     r.ReproduceTime,
		DiagnoseTime:      r.DiagnoseTime,
		LIFSSchedules:     r.LIFSSchedules,
		Interleavings:     r.Interleavings,
		AnalysisSchedules: r.AnalysisSchedules,
		TestSetSize:       r.TestSetSize,
		MemAccesses:       r.MemAccesses,
		LIFSPruned:        r.LIFSPruned,
		SnapshotBytes:     r.SnapshotBytes,
		ExecutedInstrs:    r.ExecutedInstrs,
		ReplayedInstrs:    r.ReplayedInstrs,
		SavedInstrs:       r.SavedInstrs,
		PrefixHits:        r.PrefixHits,
		PinnedBytes:       r.PinnedBytes,
		FlipsExecuted:     r.FlipsExecuted,
		FlipsSkipped:      r.FlipsSkipped,
		PriorHits:         r.PriorHits,
		Phases:            append([]PhaseStat(nil), r.Phases...),
		Spans:             append([]obs.SpanStat(nil), r.Spans...),
		Resumed:           r.Resumed,
		CheckpointAge:     r.CheckpointAge,
	}
	for _, race := range r.ChainRaces {
		v := "root-cause"
		if race.Ambiguous {
			v = "ambiguous"
		}
		s.Verdicts = append(s.Verdicts, RaceVerdict{Race: race, Verdict: v})
	}
	for _, race := range r.Benign {
		s.Verdicts = append(s.Verdicts, RaceVerdict{Race: race, Verdict: "benign"})
	}
	for _, race := range r.Unknown {
		s.Verdicts = append(s.Verdicts, RaceVerdict{Race: race, Verdict: "unknown"})
	}
	return s
}
